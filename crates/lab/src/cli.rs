//! The `specrun-lab` command-line interface.
//!
//! ```text
//! specrun-lab list
//! specrun-lab run --all --quick          # the CI reproduction gate
//! specrun-lab run fig7 table1            # any subset
//! specrun-lab perf --baseline-from-git   # throughput benchmark + gate
//! ```
//!
//! `run` executes the requested scenarios from the registry, prints each
//! scenario's human-readable report and invariant verdicts, writes
//! `artifacts/<scenario>.json` plus the merged `LAB_report.json`, and
//! exits non-zero if any paper-claim invariant failed.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::chaos::{self, ChaosOptions};
use crate::fuzz::{self, FuzzOptions};
use crate::journal::{self, Journal};
use crate::json;
use crate::perf::{self, PerfOptions};
use crate::registry::{find, registry};
use crate::report::{LabEntry, LabReport};
use crate::scenario::RunContext;
use crate::sink::{ArtifactSink as _, FsSink};
use specrun_workloads::clock::{Clock, WallClock};
use specrun_workloads::pool::CampaignSpec;
use specrun_workloads::supervisor::backoff_ms;

const USAGE: &str = "\
specrun-lab — declarative campaign runner for the SPECRUN paper artifacts

USAGE:
    specrun-lab list
    specrun-lab run [SCENARIO ...] [--all] [--quick] [--threads N] [--seed N]
                    [--artifacts-dir DIR] [--no-artifacts] [--resume]
                    [--deadline-ms N] [--retries N]
    specrun-lab perf [--quick] [--baseline PATH | --baseline-from-git] [--max-drop F]
                     [--repeats N]
    specrun-lab pool spec
    specrun-lab pool run SPEC.json [--threads N] [--out PATH]
    specrun-lab fuzz [--plans N] [--seed N] [--shard-threads N] [--quick]
                     [--fail-dir DIR] [--report PATH] [--invert-invariant NAME]
                     [--replay FILE [--trace PATH]] [--list-invariants]
                     [--resume] [--journal PATH]
                     [--deadline-ms N] [--retries N] [--max-failure-rate F]
    specrun-lab chaos [--quick] [--seed N] [--dir DIR] [--drill NAME ...]
    specrun-lab trace record --out PATH [--policy runahead|secure|no_runahead]
                             [--metrics PATH]
    specrun-lab trace replay LOG [--metrics PATH]
    specrun-lab trace diff A B

COMMANDS:
    list    Print every registered scenario.
    run     Execute scenarios; write <scenario>.json per scenario plus the
            merged LAB_report.json into --artifacts-dir (default:
            artifacts/); exit 1 if any paper-claim invariant fails or any
            scenario dies with a structured run error (the merged report
            then carries \"partial_results\": true). --quick runs the
            reduced CI scale (same invariants, byte-stable artifacts).
            Completed scenarios are journaled to
            <artifacts-dir>/LAB_report.journal as the campaign goes;
            after a crash, --resume skips the journaled passes and
            produces the same report bytes an uninterrupted run would.
            --deadline-ms reports a scenario that outlives its wall-clock
            budget as a deadline overrun (checked after the scenario
            returns); --retries re-runs a failing scenario with a
            deterministic seeded backoff, quarantining it after two
            identical failures. Only final attempts are journaled, and no
            wall-clock value enters the artifacts.
    perf    Wall-clock throughput benchmark (writes BENCH_step.json) with
            an optional perf-regression gate. The baseline is read before
            the new report is written; --baseline-from-git reads the
            committed BENCH_step.json at HEAD. --repeats N reports the
            best of N wall-clock samples per workload (CI uses 3), which
            cuts false gate failures on noisy shared hosts.
    pool    Copy-on-write fork campaigns. `pool spec` prints the paper's
            full PHT/BTB/RSB × policy matrix as a spec file; `pool run`
            executes a spec — one warmed snapshot per shard, one forked
            session per planted secret — over the supervised executor and
            writes POOL_report.json (--out overrides the path). The
            artifact is a pure function of the spec: byte-identical across
            runs and thread counts, which the CI pool-repro job enforces
            with a byte compare. Exit 0 when every shard completed, 1
            otherwise, 2 on usage/IO errors.
    fuzz    Generative attack-plan soak: derive N whole attack plans from
            --seed (hex accepted), run each twice through the simulator
            with the ground-truth observers attached, and enforce the
            fuzz-invariant registry (--list-invariants prints it). Writes
            a byte-stable FUZZ_report.json (same bytes for a fixed seed,
            any --shard-threads); each violating plan is shrunk to a
            minimal reproducer and serialized to --fail-dir (default:
            fuzz-failures/) for `fuzz --replay <file>`. With --replay,
            --trace PATH additionally records the replayed plan's
            pipeline events to a binary log for `trace replay`/`diff`
            forensics. Completed plans
            are journaled beside the report (--journal overrides the
            path); --resume after a crash skips the journaled passes and
            writes byte-identical artifacts.
            --invert-invariant flips one predicate to self-test the
            failure pipeline. Exit 1 on violations, 2 on usage/IO errors.
            Supervision: --deadline-ms cancels a plan cooperatively (the
            simulator checkpoints every few thousand cycles) once it
            outlives its wall-clock budget, heartbeats distinguish a slow
            plan (deadline exceeded) from a hung one (stalled);
            --retries re-runs supervision failures with a deterministic
            seeded backoff, quarantining a plan that fails identically
            twice; --max-failure-rate arms a campaign circuit breaker
            that stops launching new plans and reports partial results
            (resume with --resume after fixing the cause).
            --chaos-flaky-plans I,J,… is a self-test hook failing those
            plans' first attempt with a transient IO error, proving
            retries heal byte-identically.
    chaos   Fault-injection drills for the recovery machinery itself:
            inject trial panics, starved cycle budgets, artifact-write
            failures, torn temp files, journal corruption, hung and slow
            units, transient flakes and breaker trips, and verify each
            degrades exactly as documented (reported failures, old-or-new
            artifacts, byte-identical resumed reports, deterministic
            supervision verdicts on a virtual clock). Exit 0 when every
            drill recovers, 1 otherwise. --quick shrinks the drill
            campaigns to the CI scale; --drill NAME (repeatable) runs a
            subset of the drills.
    trace   Forensic pipeline-event logs. `trace record` runs the pinned
            leak_trace PoC (Fig. 11 shape, secret 127) on the chosen
            machine policy with the ground-truth observers attached and
            writes every pipeline event to a delta-encoded binary log
            (atomic replace, byte-stable across runs and thread counts);
            `trace replay` re-derives the analysis from the log alone —
            no simulator — and with --metrics writes a metrics file
            byte-identical to the live one, the losslessness check the
            CI trace-repro job enforces. `trace diff` aligns two logs by
            behavioural content (cycle timings and taint annotations
            stripped) and reports the first divergent event with commit
            and runahead-episode anchors — e.g. where the secure machine
            first suppresses a transient secret fill. Exit 0 on success
            (diff: identical), 1 when diff finds a divergence, 2 on
            usage/IO/corrupt-log errors (a torn tail is tolerated with a
            warning; a digest mismatch is not).
";

/// Entry point for the `specrun-lab` binary. Returns the exit code.
pub fn main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            0
        }
        Some("run") => match run_command(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!();
                eprint!("{USAGE}");
                2
            }
        },
        Some("perf") => match PerfOptions::from_env().apply_args(&args[1..]) {
            Ok(opts) => perf::run(&opts),
            Err(e) => {
                eprintln!("error: {e}");
                2
            }
        },
        Some("pool") => match pool_command(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!();
                eprint!("{USAGE}");
                2
            }
        },
        Some("fuzz") => match parse_fuzz_args(&args[1..]) {
            Ok(FuzzCommand::ListInvariants) => {
                list_invariants();
                0
            }
            Ok(FuzzCommand::Run(opts)) => fuzz::run(&opts),
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!();
                eprint!("{USAGE}");
                2
            }
        },
        Some("trace") => match crate::trace::trace_command(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!();
                eprint!("{USAGE}");
                2
            }
        },
        Some("chaos") => match parse_chaos_args(&args[1..]) {
            Ok(opts) => chaos::run(&opts),
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!();
                eprint!("{USAGE}");
                2
            }
        },
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            i32::from(args.is_empty())
        }
        Some(other) => {
            eprintln!("error: unknown command {other}");
            eprintln!();
            eprint!("{USAGE}");
            2
        }
    }
}

/// The legacy-binary entry point: `fig7`, `table1`, … are thin aliases for
/// `specrun-lab run <name> --no-artifacts` at full fidelity. Like the
/// pre-registry binaries they only print — overwriting a prior campaign's
/// `LAB_report.json` from a compatibility alias would be a destructive
/// surprise; use `specrun-lab run` for artifacts.
pub fn legacy_main(name: &str) -> ! {
    let code = run_command(&[name.to_string(), "--no-artifacts".to_string()]).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        2
    });
    std::process::exit(code)
}

fn list() {
    println!("{:<12} {:<14} title", "scenario", "paper_ref");
    for s in registry() {
        println!("{:<12} {:<14} {}", s.name, s.paper_ref, s.title);
    }
}

fn list_invariants() {
    println!("{:<36} claim", "invariant");
    for inv in crate::fuzz::INVARIANTS {
        println!("{:<36} {}", inv.name, inv.claim);
    }
}

/// Parses a u64 that may be written in hex (`0xC0FFEE`) or decimal.
fn parse_u64(v: &str) -> Result<u64, String> {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| format!("invalid number {v}"))
}

/// Parses an explicit worker thread count. `0` is rejected — "auto" is
/// spelled by omitting the flag, not by a zero that silently means
/// something else — and so are counts past the harness ceiling (a typo'd
/// `--threads 20000` must not spawn twenty thousand workers).
fn parse_threads(v: &str) -> Result<usize, String> {
    let n: usize = v.parse().map_err(|_| format!("invalid thread count {v}"))?;
    if n == 0 {
        return Err("thread count must be >= 1 (omit the flag to use every host core)".into());
    }
    if n > specrun_workloads::harness::MAX_THREADS {
        return Err(format!(
            "thread count {n} exceeds the ceiling of {}",
            specrun_workloads::harness::MAX_THREADS
        ));
    }
    Ok(n)
}

/// Parses a failure-rate threshold in `[0, 1]`.
fn parse_rate(v: &str) -> Result<f64, String> {
    let rate: f64 = v.parse().map_err(|_| format!("invalid rate {v}"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("rate {v} is not in [0, 1]"));
    }
    Ok(rate)
}

/// Parses a comma-separated list of plan indices (`3,17,40`).
fn parse_index_list(v: &str) -> Result<Vec<u64>, String> {
    v.split(',').map(|s| parse_u64(s.trim())).collect()
}

#[derive(Debug)]
enum FuzzCommand {
    ListInvariants,
    Run(Box<FuzzOptions>),
}

fn parse_fuzz_args(args: &[String]) -> Result<FuzzCommand, String> {
    let mut opts = FuzzOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list-invariants" => return Ok(FuzzCommand::ListInvariants),
            "--plans" => {
                let v = it.next().ok_or("--plans needs a count")?;
                opts.plans = parse_u64(v)?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = parse_u64(v)?;
            }
            "--shard-threads" => {
                let v = it.next().ok_or("--shard-threads needs a count")?;
                opts.threads = parse_threads(v)?;
            }
            "--quick" => opts.quick = true,
            "--fail-dir" => {
                let v = it.next().ok_or("--fail-dir needs a path")?;
                opts.fail_dir = PathBuf::from(v);
            }
            "--report" => {
                let v = it.next().ok_or("--report needs a path")?;
                opts.report_path = PathBuf::from(v);
            }
            "--invert-invariant" => {
                let v = it.next().ok_or("--invert-invariant needs a name")?;
                if crate::fuzz::find_invariant(v).is_none() {
                    return Err(format!(
                        "unknown invariant {v} (see `specrun-lab fuzz --list-invariants`)"
                    ));
                }
                opts.invert = Some(v.to_string());
            }
            "--replay" => {
                let v = it.next().ok_or("--replay needs a file")?;
                opts.replay = Some(PathBuf::from(v));
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a path")?;
                opts.trace = Some(PathBuf::from(v));
            }
            "--resume" => opts.resume = true,
            "--journal" => {
                let v = it.next().ok_or("--journal needs a path")?;
                opts.journal = Some(PathBuf::from(v));
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a count")?;
                opts.deadline_ms = parse_u64(v)?;
                // A deadline implies stall detection: a unit producing no
                // heartbeat for the whole deadline window is stalled, not
                // merely slow.
                opts.stall_ms = opts.deadline_ms;
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a count")?;
                opts.retries = v.parse().map_err(|_| format!("invalid retry count {v}"))?;
            }
            "--max-failure-rate" => {
                let v = it.next().ok_or("--max-failure-rate needs a rate")?;
                opts.max_failure_rate = parse_rate(v)?;
            }
            "--chaos-flaky-plans" => {
                let v = it.next().ok_or("--chaos-flaky-plans needs plan indices")?;
                opts.chaos_flaky_plans = parse_index_list(v)?;
            }
            other => return Err(format!("unknown fuzz option {other}")),
        }
    }
    if opts.trace.is_some() && opts.replay.is_none() {
        return Err("--trace only applies to --replay (it traces the replayed plan)".into());
    }
    Ok(FuzzCommand::Run(Box::new(opts)))
}

fn parse_chaos_args(args: &[String]) -> Result<ChaosOptions, String> {
    let mut opts = ChaosOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = parse_u64(v)?;
            }
            "--dir" => {
                let v = it.next().ok_or("--dir needs a path")?;
                opts.dir = Some(PathBuf::from(v));
            }
            "--drill" => {
                let v = it.next().ok_or("--drill needs a drill name")?;
                if !chaos::DRILL_NAMES.contains(&v.as_str()) {
                    return Err(format!(
                        "unknown drill {v} (available: {})",
                        chaos::DRILL_NAMES.join(", ")
                    ));
                }
                opts.drills.push(v.to_string());
            }
            other => return Err(format!("unknown chaos option {other}")),
        }
    }
    Ok(opts)
}

/// A parsed `specrun-lab pool` invocation.
#[derive(Debug, PartialEq)]
enum PoolCommand {
    /// `pool spec`: print the paper-matrix spec document.
    Spec,
    /// `pool run SPEC.json`: execute a spec file.
    Run {
        /// The spec file to execute.
        spec_path: PathBuf,
        /// Worker threads (`0` = all host cores).
        threads: usize,
        /// Where the artifact goes.
        out: PathBuf,
    },
}

fn parse_pool_args(args: &[String]) -> Result<PoolCommand, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("spec") => match it.next() {
            None => Ok(PoolCommand::Spec),
            Some(extra) => Err(format!("unexpected pool spec argument {extra}")),
        },
        Some("run") => {
            let mut spec_path = None;
            let mut threads = 0usize;
            let mut out = PathBuf::from(crate::pool::POOL_REPORT_NAME);
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--threads" => {
                        let v = it.next().ok_or("--threads needs a count")?;
                        threads = parse_threads(v)?;
                    }
                    "--out" => {
                        let v = it.next().ok_or("--out needs a path")?;
                        out = PathBuf::from(v);
                    }
                    flag if flag.starts_with('-') => {
                        return Err(format!("unknown pool run option {flag}"));
                    }
                    path if spec_path.is_none() => spec_path = Some(PathBuf::from(path)),
                    extra => return Err(format!("unexpected pool run argument {extra}")),
                }
            }
            let spec_path = spec_path
                .ok_or("pool run needs a spec file (generate one with `specrun-lab pool spec`)")?;
            Ok(PoolCommand::Run { spec_path, threads, out })
        }
        Some(other) => Err(format!("unknown pool subcommand {other} (expected spec or run)")),
        None => Err("pool needs a subcommand: spec or run".into()),
    }
}

/// Executes `specrun-lab pool …`. The artifact bytes are a pure function
/// of the spec file — `--threads` changes wall-clock time, never output.
fn pool_command(args: &[String]) -> Result<i32, String> {
    match parse_pool_args(args)? {
        PoolCommand::Spec => {
            println!("{}", CampaignSpec::paper_matrix().to_json(0));
            Ok(0)
        }
        PoolCommand::Run { spec_path, threads, out } => {
            let text = std::fs::read_to_string(&spec_path)
                .map_err(|e| format!("cannot read {}: {e}", spec_path.display()))?;
            let spec = crate::pool::parse_spec(&text)?;
            println!(
                "pool: {} shard(s) × {} secret(s) = {} forked session(s)",
                spec.shards.len(),
                spec.secrets.len(),
                spec.unit_count()
            );
            let report = specrun::run_campaign(&spec, threads);
            println!(
                "{:<22} {:>6} {:>6} {:>10} {:>9}  status",
                "shard", "units", "leaks", "leak_rate", "runahead"
            );
            for shard in &report.shards {
                println!(
                    "{:<22} {:>6} {:>6} {:>10.3} {:>9}  {}",
                    shard.spec.label(),
                    shard.stats.units,
                    shard.stats.leaks,
                    shard.stats.leak_rate(),
                    shard.stats.runahead_entries,
                    shard.status.label()
                );
            }
            let artifact = crate::pool::report_json(&spec, &report).render();
            FsSink
                .write_atomic(&out, &artifact)
                .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
            println!("wrote {}", out.display());
            if report.breaker_tripped {
                eprintln!("campaign circuit breaker tripped; some shards were skipped");
            }
            Ok(if report.all_done() { 0 } else { 1 })
        }
    }
}

#[derive(Debug)]
struct RunArgs {
    names: Vec<String>,
    ctx: RunContext,
    artifacts_dir: Option<PathBuf>,
    resume: bool,
    deadline_ms: u64,
    retries: u32,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut names = Vec::new();
    let mut all = false;
    let mut ctx = RunContext::full();
    let mut artifacts_dir = Some(PathBuf::from("artifacts"));
    let mut resume = false;
    let mut deadline_ms = 0u64;
    let mut retries = 0u32;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--quick" => ctx.quick = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a count")?;
                ctx.threads = parse_threads(v)?;
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a count")?;
                deadline_ms = parse_u64(v)?;
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a count")?;
                retries = v.parse().map_err(|_| format!("invalid retry count {v}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                ctx.seed = parse_u64(v)?;
            }
            "--artifacts-dir" => {
                let v = it.next().ok_or("--artifacts-dir needs a path")?;
                artifacts_dir = Some(PathBuf::from(v));
            }
            "--no-artifacts" => artifacts_dir = None,
            "--resume" => resume = true,
            flag if flag.starts_with('-') => return Err(format!("unknown run option {flag}")),
            name => names.push(name.to_string()),
        }
    }
    if all {
        if !names.is_empty() {
            return Err("pass either scenario names or --all, not both".to_string());
        }
        names = registry().iter().map(|s| s.name.to_string()).collect();
    }
    if names.is_empty() {
        return Err("no scenarios requested (name them or pass --all)".to_string());
    }
    if resume && artifacts_dir.is_none() {
        return Err("--resume needs the artifact journal; it cannot combine with --no-artifacts"
            .to_string());
    }
    Ok(RunArgs { names, ctx, artifacts_dir, resume, deadline_ms, retries })
}

/// The `run` journal's header: everything that determines the campaign's
/// bytes. Thread count is deliberately absent — results are
/// thread-invariant, so a resume may use a different fan-out.
fn run_journal_header(names: &[String], ctx: &RunContext) -> String {
    format!("run seed={} mode={} scenarios={}", ctx.seed, ctx.mode(), names.join(","))
}

/// Decodes one journaled scenario payload (`<invariant_count>
/// <escaped-artifact-json>`). `None` means the payload is malformed —
/// callers treat that as journal corruption.
fn parse_scenario_payload(payload: &str) -> Option<(usize, String)> {
    let (count, literal) = payload.split_once(' ')?;
    let count = count.parse::<usize>().ok()?;
    let text = json::unescape(literal)?;
    if !text.starts_with('{') {
        return None;
    }
    Some((count, text))
}

/// Executes one scenario under the `run` supervision policy: post-hoc
/// wall-clock deadline detection (scenario bodies are monolithic, so the
/// deadline is checked once the body returns — the fuzz path is the fully
/// cooperative one), bounded retries with the same deterministic seeded
/// backoff the campaign supervisor uses, and quarantine after two
/// identical failures. Returns the final run plus whether it was
/// quarantined.
fn execute_supervised(
    scenario: &crate::scenario::Scenario,
    index: usize,
    ctx: &RunContext,
    clock: &dyn Clock,
    deadline_ms: u64,
    retries: u32,
) -> (crate::scenario::ScenarioRun, bool) {
    let mut attempt = 0u32;
    let mut last_signature: Option<String> = None;
    loop {
        if attempt > 0 {
            let wait = backoff_ms(ctx.seed, index as u64, attempt);
            println!("  retry {attempt} of {retries} after {wait} ms backoff");
            clock.sleep_ms(wait);
        }
        let started = clock.now_ms();
        let mut run = scenario.try_execute(ctx);
        let elapsed = clock.now_ms().saturating_sub(started);
        if deadline_ms > 0 && elapsed >= deadline_ms && run.error.is_none() {
            run.error =
                Some(format!("deadline exceeded: scenario outlived its {deadline_ms} ms budget"));
        }
        if run.passed() {
            return (run, false);
        }
        let signature = run.error.clone().unwrap_or_else(|| {
            run.failures().iter().map(|i| i.name.clone()).collect::<Vec<_>>().join(",")
        });
        if last_signature.as_deref() == Some(signature.as_str()) {
            return (run, true);
        }
        if attempt >= retries {
            return (run, false);
        }
        last_signature = Some(signature);
        attempt += 1;
    }
}

fn run_command(args: &[String]) -> Result<i32, String> {
    let RunArgs { names, ctx, artifacts_dir, resume, deadline_ms, retries } = parse_run_args(args)?;
    let scenarios: Vec<_> = names
        .iter()
        .map(|name| {
            find(name).ok_or_else(|| format!("unknown scenario {name} (see `specrun-lab list`)"))
        })
        .collect::<Result<_, _>>()?;

    // The campaign journal lives beside the artifacts. Passed scenarios
    // are appended as they complete; --resume splices them back without
    // re-running, byte-identical to an uninterrupted campaign.
    let header = run_journal_header(&names, &ctx);
    let journal = artifacts_dir.as_ref().map(|dir| {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        }
        Journal::new(&FsSink, dir.join("LAB_report.journal"))
    });
    let mut recovered: BTreeMap<String, (usize, String)> = BTreeMap::new();
    if let Some(j) = &journal {
        let mut fresh = true;
        if resume {
            match journal::load(j.path(), &header) {
                Ok(Some(state)) => {
                    fresh = false;
                    for (key, payload) in &state.entries {
                        let Some(name) = key.strip_prefix("scenario:") else { continue };
                        if !names.iter().any(|n| n == name) {
                            continue;
                        }
                        match parse_scenario_payload(payload) {
                            Some(entry) => {
                                recovered.insert(name.to_string(), entry);
                            }
                            None => {
                                eprintln!(
                                    "error: cannot resume from {}: journaled scenario {name} \
                                     has a malformed payload",
                                    j.path().display()
                                );
                                return Ok(2);
                            }
                        }
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    eprintln!("error: cannot resume from {}: {e}", j.path().display());
                    eprintln!("hint: delete the journal (or drop --resume) to start fresh");
                    return Ok(2);
                }
            }
        }
        if fresh {
            if let Err(e) = j.begin(&header) {
                eprintln!("error: cannot start journal {}: {e}", j.path().display());
                return Ok(2);
            }
        }
    }

    let mut report = LabReport::default();
    let mut skipped = 0usize;
    let clock = WallClock::new();
    for (index, scenario) in scenarios.iter().enumerate() {
        if let Some((invariant_count, json)) = recovered.remove(scenario.name) {
            println!(
                "== {} ({}) — journaled as passed, skipped ==",
                scenario.name, scenario.paper_ref
            );
            println!();
            skipped += 1;
            report.runs.push(LabEntry::Journaled {
                name: scenario.name.to_string(),
                invariant_count,
                json,
            });
            continue;
        }
        println!("== {} ({}) — {} ==", scenario.name, scenario.paper_ref, scenario.title);
        let (run, quarantined) =
            execute_supervised(scenario, index, &ctx, &clock, deadline_ms, retries);
        for line in &run.lines {
            println!("{line}");
        }
        for inv in &run.invariants {
            let verdict = if inv.passed { "ok" } else { "FAILED" };
            println!("  [{verdict}] {}: {} (observed: {})", inv.name, inv.claim, inv.observed);
        }
        if let Some(error) = &run.error {
            println!("  [FAILED] run_error: scenario did not complete ({error})");
        }
        if quarantined {
            println!(
                "  [FAILED] quarantined: {} failed identically twice; retries stopped",
                scenario.name
            );
        }
        println!();
        if run.passed() {
            if let Some(j) = &journal {
                let mut text = run.to_json().render();
                text.pop(); // journal entries are single-line; drop the newline
                let payload = format!("{} {}", run.invariants.len(), json::escape(&text));
                if let Err(e) = j.append(&format!("scenario:{}", run.name), &payload) {
                    eprintln!("error: cannot append to journal {}: {e}", j.path().display());
                    return Ok(2);
                }
            }
        }
        report.runs.push(run.into());
    }
    if skipped > 0 {
        // Progress note only — the report bytes never depend on resume.
        println!(
            "resumed: {skipped} scenario(s) recovered from the journal; {} re-run",
            scenarios.len() - skipped
        );
    }

    if let Some(dir) = &artifacts_dir {
        let paths = match report.write_artifacts(dir) {
            Ok(paths) => paths,
            Err(e) => {
                eprintln!("error: cannot write artifacts under {}: {e}", dir.display());
                if let Some(j) = &journal {
                    eprintln!("note: the campaign journal is kept at {}", j.path().display());
                }
                return Ok(2);
            }
        };
        for p in &paths {
            println!("wrote {}", p.display());
        }
    }
    // Artifacts are durable; retire the journal so a later run without
    // --resume starts clean.
    if let Some(j) = &journal {
        if let Err(e) = j.finish() {
            eprintln!("error: cannot remove journal {}: {e}", j.path().display());
            return Ok(2);
        }
    }

    let failures = report.failures();
    println!();
    if failures.is_empty() {
        println!(
            "all {} invariants passed across {} scenario(s) [{} mode]",
            report.invariant_count(),
            report.runs.len(),
            ctx.mode()
        );
        Ok(0)
    } else {
        if report.partial_results() {
            eprintln!("results are PARTIAL: at least one scenario died with a run error");
        }
        eprintln!("paper-claim invariants FAILED:");
        for (scenario, invariant) in &failures {
            eprintln!("  {scenario}: {invariant}");
        }
        Ok(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_all_quick() {
        let parsed = parse_run_args(&strings(&["--all", "--quick"])).unwrap();
        assert_eq!(parsed.names.len(), registry().len());
        assert!(parsed.ctx.quick);
        assert_eq!(parsed.artifacts_dir, Some(PathBuf::from("artifacts")));
    }

    #[test]
    fn parses_subset_with_options() {
        let parsed = parse_run_args(&strings(&[
            "fig7",
            "table1",
            "--threads",
            "2",
            "--seed",
            "7",
            "--artifacts-dir",
            "/tmp/a",
        ]))
        .unwrap();
        assert_eq!(parsed.names, vec!["fig7", "table1"]);
        assert_eq!(parsed.ctx.threads, 2);
        assert_eq!(parsed.ctx.seed, 7);
        assert_eq!(parsed.artifacts_dir, Some(PathBuf::from("/tmp/a")));
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(parse_run_args(&strings(&[])).is_err(), "no scenarios");
        assert!(parse_run_args(&strings(&["--all", "fig7"])).is_err(), "names plus --all");
        assert!(parse_run_args(&strings(&["--bogus"])).is_err(), "unknown flag");
        assert!(parse_run_args(&strings(&["--threads"])).is_err(), "missing value");
    }

    #[test]
    fn no_artifacts_disables_emission() {
        let parsed = parse_run_args(&strings(&["table1", "--no-artifacts"])).unwrap();
        assert_eq!(parsed.artifacts_dir, None);
    }

    #[test]
    fn unknown_scenario_is_reported() {
        let err = run_command(&strings(&["fig12", "--no-artifacts"])).unwrap_err();
        assert!(err.contains("unknown scenario fig12"), "{err}");
    }

    #[test]
    fn parses_hex_and_decimal_seeds() {
        assert_eq!(parse_u64("0xC0FFEE").unwrap(), 0xC0FFEE);
        assert_eq!(parse_u64("0Xc0ffee").unwrap(), 0xC0FFEE);
        assert_eq!(parse_u64("12648430").unwrap(), 0xC0FFEE);
        assert!(parse_u64("0xZZ").is_err());
        assert!(parse_u64("nope").is_err());
        let parsed = parse_run_args(&strings(&["fig7", "--seed", "0x10"])).unwrap();
        assert_eq!(parsed.ctx.seed, 16);
    }

    #[test]
    fn parses_fuzz_options() {
        let cmd = parse_fuzz_args(&strings(&[
            "--plans",
            "50",
            "--seed",
            "0xC0FFEE",
            "--shard-threads",
            "4",
            "--quick",
            "--fail-dir",
            "/tmp/ff",
            "--report",
            "/tmp/r.json",
            "--invert-invariant",
            "makes_progress",
        ]))
        .unwrap();
        let FuzzCommand::Run(opts) = cmd else { panic!("expected a run command") };
        assert_eq!(opts.plans, 50);
        assert_eq!(opts.seed, 0xC0FFEE);
        assert_eq!(opts.threads, 4);
        assert!(opts.quick);
        assert_eq!(opts.fail_dir, PathBuf::from("/tmp/ff"));
        assert_eq!(opts.report_path, PathBuf::from("/tmp/r.json"));
        assert_eq!(opts.invert.as_deref(), Some("makes_progress"));
    }

    #[test]
    fn parses_resume_flags() {
        let parsed = parse_run_args(&strings(&["--all", "--quick", "--resume"])).unwrap();
        assert!(parsed.resume);
        let err = parse_run_args(&strings(&["fig7", "--resume", "--no-artifacts"])).unwrap_err();
        assert!(err.contains("--resume"), "{err}");

        let cmd = parse_fuzz_args(&strings(&["--resume", "--journal", "/tmp/j.journal"])).unwrap();
        let FuzzCommand::Run(opts) = cmd else { panic!("expected a run command") };
        assert!(opts.resume);
        assert_eq!(opts.journal, Some(PathBuf::from("/tmp/j.journal")));
    }

    #[test]
    fn parses_chaos_options() {
        let opts =
            parse_chaos_args(&strings(&["--quick", "--seed", "0x7", "--dir", "/tmp/c"])).unwrap();
        assert!(opts.quick);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.dir, Some(PathBuf::from("/tmp/c")));
        assert!(parse_chaos_args(&strings(&["--bogus"])).is_err(), "unknown flag");
        assert!(parse_chaos_args(&strings(&["--seed"])).is_err(), "missing value");
    }

    #[test]
    fn scenario_payload_round_trips() {
        let text = "{\"name\": \"fig7\"}";
        let payload = format!("3 {}", json::escape(text));
        assert_eq!(parse_scenario_payload(&payload), Some((3, text.to_string())));
        assert_eq!(parse_scenario_payload("x {}"), None, "bad count");
        assert_eq!(parse_scenario_payload("3"), None, "no payload");
        assert_eq!(parse_scenario_payload("3 not-json"), None, "not an object");
    }

    #[test]
    fn rejects_zero_and_absurd_thread_counts() {
        for flag in [&["fig7", "--threads", "0"][..], &["fig7", "--threads", "100000"][..]] {
            let err = parse_run_args(&strings(flag)).unwrap_err();
            assert!(err.contains("thread count"), "{err}");
        }
        let err = parse_fuzz_args(&strings(&["--shard-threads", "0"])).unwrap_err();
        assert!(err.contains(">= 1"), "{err}");
        let err = parse_fuzz_args(&strings(&["--shard-threads", "99999"])).unwrap_err();
        assert!(err.contains("ceiling"), "{err}");
        assert!(parse_threads("8").is_ok());
    }

    #[test]
    fn parses_supervision_options() {
        let cmd = parse_fuzz_args(&strings(&[
            "--deadline-ms",
            "5000",
            "--retries",
            "2",
            "--max-failure-rate",
            "0.25",
            "--chaos-flaky-plans",
            "3,17",
        ]))
        .unwrap();
        let FuzzCommand::Run(opts) = cmd else { panic!("expected a run command") };
        assert_eq!(opts.deadline_ms, 5000);
        assert_eq!(opts.stall_ms, 5000, "a deadline arms stall detection");
        assert_eq!(opts.retries, 2);
        assert_eq!(opts.max_failure_rate, 0.25);
        assert_eq!(opts.chaos_flaky_plans, vec![3, 17]);
        assert!(parse_fuzz_args(&strings(&["--max-failure-rate", "1.5"])).is_err());
        assert!(parse_fuzz_args(&strings(&["--max-failure-rate", "-0.1"])).is_err());
        assert!(parse_fuzz_args(&strings(&["--chaos-flaky-plans", "1,x"])).is_err());

        let parsed =
            parse_run_args(&strings(&["fig7", "--deadline-ms", "9000", "--retries", "1"])).unwrap();
        assert_eq!(parsed.deadline_ms, 9000);
        assert_eq!(parsed.retries, 1);
    }

    #[test]
    fn parses_and_validates_drill_filters() {
        let opts = parse_chaos_args(&strings(&[
            "--quick",
            "--drill",
            "stalled_unit",
            "--drill",
            "deadline_overrun",
        ]))
        .unwrap();
        assert_eq!(opts.drills, vec!["stalled_unit", "deadline_overrun"]);
        let err = parse_chaos_args(&strings(&["--drill", "nope"])).unwrap_err();
        assert!(err.contains("unknown drill nope"), "{err}");
        assert!(err.contains("stalled_unit"), "lists the available drills: {err}");
    }

    #[test]
    fn parses_pool_commands() {
        assert_eq!(parse_pool_args(&strings(&["spec"])).unwrap(), PoolCommand::Spec);
        let parsed =
            parse_pool_args(&strings(&["run", "matrix.json", "--threads", "4", "--out", "/tmp/p"]))
                .unwrap();
        assert_eq!(
            parsed,
            PoolCommand::Run {
                spec_path: PathBuf::from("matrix.json"),
                threads: 4,
                out: PathBuf::from("/tmp/p"),
            }
        );
        let defaults = parse_pool_args(&strings(&["run", "matrix.json"])).unwrap();
        assert_eq!(
            defaults,
            PoolCommand::Run {
                spec_path: PathBuf::from("matrix.json"),
                threads: 0,
                out: PathBuf::from(crate::pool::POOL_REPORT_NAME),
            }
        );
    }

    #[test]
    fn rejects_bad_pool_usage() {
        assert!(parse_pool_args(&strings(&[])).is_err(), "no subcommand");
        assert!(parse_pool_args(&strings(&["bogus"])).is_err(), "unknown subcommand");
        assert!(parse_pool_args(&strings(&["spec", "extra"])).is_err(), "spec takes nothing");
        assert!(parse_pool_args(&strings(&["run"])).is_err(), "run needs a spec file");
        assert!(parse_pool_args(&strings(&["run", "a.json", "b.json"])).is_err(), "one spec only");
        assert!(parse_pool_args(&strings(&["run", "a.json", "--bogus"])).is_err(), "unknown flag");
        assert!(parse_pool_args(&strings(&["run", "a.json", "--threads", "0"])).is_err());
        let err = pool_command(&strings(&["run", "/nonexistent/spec.json"])).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn pool_spec_document_round_trips_through_the_decoder() {
        // What `specrun-lab pool spec` prints is exactly what
        // `specrun-lab pool run` accepts.
        let printed = CampaignSpec::paper_matrix().to_json(0);
        assert_eq!(crate::pool::parse_spec(&printed).unwrap(), CampaignSpec::paper_matrix());
    }

    #[test]
    fn parses_replay_trace() {
        let cmd = parse_fuzz_args(&strings(&["--replay", "fail_3.json", "--trace", "/tmp/t.bin"]))
            .unwrap();
        let FuzzCommand::Run(opts) = cmd else { panic!("expected a run command") };
        assert_eq!(opts.replay, Some(PathBuf::from("fail_3.json")));
        assert_eq!(opts.trace, Some(PathBuf::from("/tmp/t.bin")));
        let err = parse_fuzz_args(&strings(&["--trace", "/tmp/t.bin"])).unwrap_err();
        assert!(err.contains("--replay"), "trace without replay is rejected: {err}");
    }

    #[test]
    fn rejects_bad_fuzz_usage() {
        assert!(parse_fuzz_args(&strings(&["--plans"])).is_err(), "missing value");
        assert!(parse_fuzz_args(&strings(&["--bogus"])).is_err(), "unknown flag");
        let err = parse_fuzz_args(&strings(&["--invert-invariant", "nope"])).unwrap_err();
        assert!(err.contains("unknown invariant nope"), "{err}");
        assert!(matches!(
            parse_fuzz_args(&strings(&["--list-invariants"])).unwrap(),
            FuzzCommand::ListInvariants
        ));
    }
}
