//! The append-only campaign journal behind `--resume`.
//!
//! A journal is a line-oriented file beside the campaign's report
//! artifact. The first line identifies the campaign (magic + a header
//! string derived from everything that determines the campaign's bytes:
//! seed, size, mode, inversion); each subsequent line records one
//! completed unit of work as `e <key> <payload> <digest>`, where the
//! digest is the FNV-1a hash of `<key> <payload>` — placed *last* so a
//! line torn by a crash loses its digest and parses as garbage rather
//! than as a plausible entry.
//!
//! Tolerance is asymmetric by design:
//!
//! * a **torn final line** (truncated or garbage) is expected — appends
//!   are not fsynced — and is silently dropped on load;
//! * a **digest mismatch** on a structurally complete entry, or garbage
//!   anywhere before the final line, means the journal was corrupted or
//!   hand-edited and is a **hard error**: resuming from it could silently
//!   produce a report that disagrees with an uninterrupted run;
//! * a **header mismatch** (different seed/size/mode) is likewise a hard
//!   error — the journal describes some other campaign.
//!
//! Journals are deleted when a campaign completes, so `--resume` after a
//! clean finish is simply a fresh run — same bytes either way.

use std::io;
use std::path::{Path, PathBuf};

use crate::scenario::fnv1a;
use crate::sink::ArtifactSink;

/// First token pair of every journal; bump the version when the entry
/// format changes so stale journals hard-fail instead of misparse.
pub const JOURNAL_MAGIC: &str = "specrun-journal v1";

/// Why a journal could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The header names a different campaign (seed/size/mode drift).
    HeaderMismatch {
        /// The header line found on disk.
        found: String,
        /// The header line this campaign expected.
        expected: String,
    },
    /// A non-final line is not a valid entry.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A structurally complete entry whose digest does not match its body.
    DigestMismatch {
        /// 1-based line number.
        line: usize,
    },
    /// The journal file could not be read.
    Io(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::HeaderMismatch { found, expected } => write!(
                f,
                "journal belongs to a different campaign (found {found:?}, expected {expected:?})"
            ),
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal line {line} is corrupt: {reason}")
            }
            JournalError::DigestMismatch { line } => {
                write!(f, "journal line {line} fails its digest check (corrupted entry)")
            }
            JournalError::Io(e) => write!(f, "cannot read journal: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// Everything a journal recorded, in append order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalState {
    /// `(key, payload)` per entry; duplicate keys keep the last payload.
    pub entries: Vec<(String, String)>,
    /// Whether a torn final line was dropped.
    pub torn_tail: bool,
}

impl JournalState {
    /// The payload of the last entry recorded under `key`, if any.
    pub fn payload(&self, key: &str) -> Option<&str> {
        self.entries.iter().rev().find(|(k, _)| k == key).map(|(_, p)| p.as_str())
    }
}

/// Renders one entry line (`e <key> <payload> <digest>`). Exposed so the
/// chaos harness and tests can craft journals byte-for-byte.
pub fn entry_line(key: &str, payload: &str) -> String {
    debug_assert!(!key.contains(' '), "journal keys are space-free");
    let body = if payload.is_empty() { key.to_string() } else { format!("{key} {payload}") };
    format!("e {body} {:016x}", fnv1a(body.as_bytes()))
}

fn parse_entry(line: &str) -> Result<(String, String), String> {
    let body_digest = line.strip_prefix("e ").ok_or("missing entry prefix")?;
    let (body, digest_hex) = body_digest.rsplit_once(' ').ok_or("missing digest field")?;
    if digest_hex.len() != 16 || !digest_hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err("digest is not 16 hex digits".to_string());
    }
    let digest = u64::from_str_radix(digest_hex, 16).map_err(|e| e.to_string())?;
    if fnv1a(body.as_bytes()) != digest {
        return Err(DIGEST_MISMATCH.to_string());
    }
    match body.split_once(' ') {
        Some((key, payload)) => Ok((key.to_string(), payload.to_string())),
        None => Ok((body.to_string(), String::new())),
    }
}

const DIGEST_MISMATCH: &str = "digest mismatch";

/// Loads a journal. `Ok(None)` means no journal exists (fresh start);
/// `Ok(Some(state))` carries every intact entry. See the module docs for
/// which corruptions are tolerated and which are hard errors.
pub fn load(path: &Path, expected_header: &str) -> Result<Option<JournalState>, JournalError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(JournalError::Io(format!("{}: {e}", path.display()))),
    };
    let lines: Vec<&str> = text.lines().collect();
    let Some((&first, rest)) = lines.split_first() else {
        return Ok(None); // empty file: the header append itself was lost
    };
    let expected = format!("{JOURNAL_MAGIC} {expected_header}");
    if first != expected {
        // A torn header (the only line, cut short) degrades to a fresh
        // start; anything else is a different campaign's journal.
        if rest.is_empty() && !first.is_empty() && expected.starts_with(first) {
            return Ok(None);
        }
        return Err(JournalError::HeaderMismatch { found: first.to_string(), expected });
    }
    let mut state = JournalState::default();
    for (i, line) in rest.iter().enumerate() {
        let line_no = i + 2; // 1-based, after the header
        let last = i + 1 == rest.len();
        match parse_entry(line) {
            Ok(entry) => state.entries.push(entry),
            Err(reason) if reason == DIGEST_MISMATCH => {
                return Err(JournalError::DigestMismatch { line: line_no });
            }
            Err(_) if last => {
                state.torn_tail = true; // the expected torn-append case
            }
            Err(reason) => return Err(JournalError::Corrupt { line: line_no, reason }),
        }
    }
    Ok(Some(state))
}

/// An open journal: a sink plus the path appends go to.
pub struct Journal<'a> {
    sink: &'a dyn ArtifactSink,
    path: PathBuf,
}

impl<'a> Journal<'a> {
    /// Binds a journal at `path` writing through `sink`.
    pub fn new(sink: &'a dyn ArtifactSink, path: PathBuf) -> Journal<'a> {
        Journal { sink, path }
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Starts a fresh journal: removes any stale file and writes the
    /// header line.
    pub fn begin(&self, header: &str) -> io::Result<()> {
        self.sink.remove(&self.path)?;
        self.sink.append_line(&self.path, &format!("{JOURNAL_MAGIC} {header}"))
    }

    /// Durably records one completed unit of work.
    pub fn append(&self, key: &str, payload: &str) -> io::Result<()> {
        self.sink.append_line(&self.path, &entry_line(key, payload))
    }

    /// Deletes the journal — the campaign completed, so a later `--resume`
    /// is just a fresh run.
    pub fn finish(&self) -> io::Result<()> {
        self.sink.remove(&self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::FsSink;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("journal_{}_{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_entries_in_order() {
        let dir = scratch("rt");
        let j = Journal::new(&FsSink, dir.join("j"));
        j.begin("fuzz seed=1 plans=4").unwrap();
        j.append("plan:0", "ok 1234").unwrap();
        j.append("plan:1", "fail determinism").unwrap();
        j.append("plan:2", "").unwrap();
        let state = load(j.path(), "fuzz seed=1 plans=4").unwrap().unwrap();
        assert!(!state.torn_tail);
        assert_eq!(
            state.entries,
            vec![
                ("plan:0".to_string(), "ok 1234".to_string()),
                ("plan:1".to_string(), "fail determinism".to_string()),
                ("plan:2".to_string(), String::new()),
            ]
        );
        assert_eq!(state.payload("plan:1"), Some("fail determinism"));
        j.finish().unwrap();
        assert!(load(j.path(), "fuzz seed=1 plans=4").unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_a_fresh_start() {
        let dir = scratch("missing");
        assert_eq!(load(&dir.join("nope"), "h").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_mismatch_is_a_hard_error() {
        let dir = scratch("header");
        let j = Journal::new(&FsSink, dir.join("j"));
        j.begin("fuzz seed=1 plans=4").unwrap();
        let err = load(j.path(), "fuzz seed=2 plans=4").unwrap_err();
        assert!(matches!(err, JournalError::HeaderMismatch { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_header_degrades_to_fresh_start() {
        let dir = scratch("tornheader");
        let path = dir.join("j");
        std::fs::write(&path, format!("{JOURNAL_MAGIC} fuzz se")).unwrap();
        assert_eq!(load(&path, "fuzz seed=1").unwrap(), None, "header prefix = torn write");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let dir = scratch("torn");
        let j = Journal::new(&FsSink, dir.join("j"));
        j.begin("h").unwrap();
        j.append("plan:0", "ok").unwrap();
        // Simulate a crash mid-append: the second entry lost its tail.
        let full = entry_line("plan:1", "ok");
        let torn = &full[..full.len() - 7];
        std::fs::OpenOptions::new()
            .append(true)
            .open(j.path())
            .and_then(|mut f| std::io::Write::write_all(&mut f, torn.as_bytes()))
            .unwrap();
        let state = load(j.path(), "h").unwrap().unwrap();
        assert!(state.torn_tail, "the torn line is noticed");
        assert_eq!(state.entries.len(), 1, "…and dropped");
        // Garbage trailing line: same treatment.
        let j2 = Journal::new(&FsSink, dir.join("j2"));
        j2.begin("h").unwrap();
        j2.append("plan:0", "ok").unwrap();
        FsSink.append_line(j2.path(), "complete garbage").unwrap();
        let state = load(j2.path(), "h").unwrap().unwrap();
        assert!(state.torn_tail);
        assert_eq!(state.entries.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_before_the_final_line_is_a_hard_error() {
        let dir = scratch("mid");
        let j = Journal::new(&FsSink, dir.join("j"));
        j.begin("h").unwrap();
        FsSink.append_line(j.path(), "garbage in the middle").unwrap();
        j.append("plan:1", "ok").unwrap();
        let err = load(j.path(), "h").unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { line: 2, .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_mismatch_is_a_hard_error_even_on_the_final_line() {
        let dir = scratch("digest");
        let j = Journal::new(&FsSink, dir.join("j"));
        j.begin("h").unwrap();
        // A structurally complete entry whose payload was altered after
        // the digest was computed.
        let line = entry_line("plan:0", "ok 1111").replace("ok 1111", "ok 2222");
        FsSink.append_line(j.path(), &line).unwrap();
        let err = load(j.path(), "h").unwrap_err();
        assert_eq!(err, JournalError::DigestMismatch { line: 2 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_line_digest_covers_key_and_payload() {
        let a = entry_line("k", "p");
        let b = entry_line("k", "q");
        assert_ne!(a, b);
        assert!(a.starts_with("e k p "));
        let (_, digest) = a.rsplit_once(' ').unwrap();
        assert_eq!(digest.len(), 16);
    }
}
