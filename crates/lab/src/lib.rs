//! # specrun-lab
//!
//! One declarative campaign runner for every SPECRUN paper artifact.
//!
//! Each paper figure, table, variant matrix and defense experiment is a
//! [`Scenario`] value in the [`registry`](registry::registry) — a name,
//! a run function over the parallel trial harness, metric extractors and
//! **paper-claim invariants** ("secure runahead leakage = 0", "runahead
//! speedup > 1 on mcf") — instead of a standalone binary. The runner
//! executes any subset, fans trials out over the host's cores, and emits
//! machine-readable artifacts (`artifacts/<scenario>.json` plus a merged
//! `LAB_report.json` with per-scenario metrics, seeds, config digests and
//! invariant verdicts) that are **byte-identical across runs** for fixed
//! seeds — the property the CI reproduction gate relies on.
//!
//! ```sh
//! specrun-lab list                      # every registered scenario
//! specrun-lab run --all --quick         # the CI reproduction gate
//! specrun-lab run fig7 table1           # any subset, full fidelity
//! specrun-lab perf --baseline-from-git  # throughput benchmark + perf gate
//! ```
//!
//! The legacy binaries (`fig7`, `fig9`, …, `bench_step`) are thin aliases
//! over this crate. Adding a new experiment is a registry entry, not a new
//! binary:
//!
//! ```
//! use specrun_lab::{registry, RunContext};
//! let scenarios = registry::registry();
//! assert!(scenarios.iter().any(|s| s.name == "fig7"));
//! let table1 = registry::find("table1").unwrap();
//! let run = table1.execute(&RunContext::quick());
//! assert!(run.passed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod cli;
pub mod fuzz;
pub mod journal;
pub mod json;
pub mod perf;
pub mod pool;
pub mod registry;
pub mod report;
pub mod scenario;
pub mod sink;
pub mod trace;

pub use fuzz::{FuzzInvariant, FuzzOptions, Violation, FUZZ_REPORT_NAME, INVARIANTS};
pub use json::Json;
pub use pool::{parse_spec, report_json, POOL_REPORT_NAME};
pub use report::{parse_metrics, BenchReport, LabEntry, LabReport, LAB_REPORT_NAME};
pub use scenario::{Invariant, RunContext, Scenario, ScenarioRun, DEFAULT_SEED};
pub use sink::{ArtifactSink, ArtifactTraceSink, ChaosSink, FsSink};

/// Commonly used items for examples and tests.
pub mod prelude {
    pub use crate::registry::{find, registry};
    pub use crate::report::{LabReport, LAB_REPORT_NAME};
    pub use crate::scenario::{Invariant, RunContext, Scenario, ScenarioRun};
}
