//! Artifact emission: per-scenario JSON files plus the merged
//! `LAB_report.json` the CI reproduction gate checks, and the flat
//! `BENCH_*.json` performance report (moved here from `specrun-bench` so
//! the legacy binaries can be thin aliases without a dependency cycle).

use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::scenario::ScenarioRun;
use crate::sink::{ArtifactSink, FsSink};

/// File name of the merged campaign report.
pub const LAB_REPORT_NAME: &str = "LAB_report.json";

/// One scenario's contribution to the merged report: either a run from
/// this process, or a *journaled* run recovered by `--resume` — the
/// artifact text a previous (crashed) campaign recorded after the
/// scenario passed. Journaled entries splice back into the merged report
/// verbatim (via [`Json::Raw`]), so a resumed report is byte-identical to
/// an uninterrupted one.
#[derive(Debug, Clone)]
pub enum LabEntry {
    /// A scenario executed by this process.
    Run(ScenarioRun),
    /// A passed scenario recovered from the campaign journal.
    Journaled {
        /// Registry name.
        name: String,
        /// How many invariants the journaled run checked.
        invariant_count: usize,
        /// The per-scenario artifact object, rendered at depth 0 without
        /// the trailing newline (exactly what the journal recorded).
        json: String,
    },
}

impl LabEntry {
    /// Registry name of the scenario.
    pub fn name(&self) -> &str {
        match self {
            LabEntry::Run(run) => &run.name,
            LabEntry::Journaled { name, .. } => name,
        }
    }

    /// Whether the scenario passed. Journaled entries are always passes:
    /// only passed scenarios are journaled, failures re-run on resume.
    pub fn passed(&self) -> bool {
        match self {
            LabEntry::Run(run) => run.passed(),
            LabEntry::Journaled { .. } => true,
        }
    }

    /// How many invariants the scenario checked.
    pub fn invariant_count(&self) -> usize {
        match self {
            LabEntry::Run(run) => run.invariants.len(),
            LabEntry::Journaled { invariant_count, .. } => *invariant_count,
        }
    }

    /// Structured execution failure, when the scenario did not complete.
    pub fn error(&self) -> Option<&str> {
        match self {
            LabEntry::Run(run) => run.error.as_deref(),
            LabEntry::Journaled { .. } => None,
        }
    }

    /// The merged-report element for this entry.
    pub fn to_json(&self) -> Json {
        match self {
            LabEntry::Run(run) => run.to_json(),
            LabEntry::Journaled { json, .. } => Json::Raw(json.clone()),
        }
    }

    /// The per-scenario artifact file contents.
    pub fn artifact_text(&self) -> String {
        match self {
            LabEntry::Run(run) => run.to_json().render(),
            LabEntry::Journaled { json, .. } => format!("{json}\n"),
        }
    }
}

impl From<ScenarioRun> for LabEntry {
    fn from(run: ScenarioRun) -> LabEntry {
        LabEntry::Run(run)
    }
}

/// A completed campaign: the scenario entries in execution order.
#[derive(Debug, Clone, Default)]
pub struct LabReport {
    /// Per-scenario results, in execution order.
    pub runs: Vec<LabEntry>,
}

impl LabReport {
    /// Whether every scenario completed and every invariant held.
    pub fn passed(&self) -> bool {
        self.runs.iter().all(LabEntry::passed)
    }

    /// Whether any scenario failed to complete (structured run error):
    /// the campaign's results are partial — reported, but not a full
    /// reproduction.
    pub fn partial_results(&self) -> bool {
        self.runs.iter().any(|e| e.error().is_some())
    }

    /// Total number of checked invariants.
    pub fn invariant_count(&self) -> usize {
        self.runs.iter().map(LabEntry::invariant_count).sum()
    }

    /// Every failed invariant, with its scenario name. A scenario that
    /// died before checking anything contributes its error under the
    /// pseudo-invariant name `run_error`.
    pub fn failures(&self) -> Vec<(String, String)> {
        self.runs
            .iter()
            .flat_map(|entry| match entry {
                LabEntry::Run(run) if run.error.is_some() => {
                    vec![(run.name.clone(), "run_error".to_string())]
                }
                LabEntry::Run(run) => {
                    run.failures().into_iter().map(|i| (run.name.clone(), i.name.clone())).collect()
                }
                LabEntry::Journaled { .. } => Vec::new(),
            })
            .collect()
    }

    /// The merged report object.
    pub fn to_json(&self) -> Json {
        let scenarios = self.runs.iter().map(LabEntry::to_json).collect();
        Json::obj(vec![
            ("lab".into(), Json::str("specrun")),
            ("scenario_count".into(), Json::Num(self.runs.len() as f64)),
            ("invariant_count".into(), Json::Num(self.invariant_count() as f64)),
            ("passed".into(), Json::Bool(self.passed())),
            ("partial_results".into(), Json::Bool(self.partial_results())),
            ("scenarios".into(), Json::Arr(scenarios)),
        ])
    }

    /// Writes `artifacts_dir/<scenario>.json` per run plus the merged
    /// [`LAB_REPORT_NAME`] into the same directory, through the real
    /// filesystem sink. See [`LabReport::write_artifacts_with`].
    pub fn write_artifacts(&self, artifacts_dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.write_artifacts_with(artifacts_dir, &FsSink)
    }

    /// Writes every artifact through `sink` — everything lands inside the
    /// directory the caller named, so concurrent campaigns with distinct
    /// `--artifacts-dir`s never share an output path. Each file is
    /// written atomically (temp + rename): a crash mid-campaign leaves
    /// old-or-new files, never truncated hybrids. Any `.json` file
    /// already in the directory that this campaign does not produce is
    /// removed first: the merged report must describe exactly the
    /// per-scenario files beside it, so a subset run cannot leave stale
    /// artifacts from an earlier campaign mixed in. The merged report is
    /// written *last*, after every per-scenario file it names. Returns
    /// every path written, merged report first.
    pub fn write_artifacts_with(
        &self,
        artifacts_dir: &Path,
        sink: &dyn ArtifactSink,
    ) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(artifacts_dir)?;
        let keep: Vec<PathBuf> = std::iter::once(artifacts_dir.join(LAB_REPORT_NAME))
            .chain(self.runs.iter().map(|e| artifacts_dir.join(format!("{}.json", e.name()))))
            .collect();
        for entry in std::fs::read_dir(artifacts_dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json")
                && path.is_file()
                && !keep.contains(&path)
            {
                sink.remove(&path)?;
            }
        }
        let report_path = artifacts_dir.join(LAB_REPORT_NAME);
        let mut paths = vec![report_path.clone()];
        for entry in &self.runs {
            let path = artifacts_dir.join(format!("{}.json", entry.name()));
            sink.write_atomic(&path, &entry.artifact_text())?;
            paths.push(path);
        }
        sink.write_atomic(&report_path, &self.to_json().render())?;
        Ok(paths)
    }
}

/// A machine-readable benchmark report, serialized as `BENCH_<name>.json`.
///
/// The format is a flat JSON object: string notes and numeric metrics. No
/// serde in this offline build — the writer escapes and formats by hand.
///
/// ```
/// let mut r = specrun_lab::BenchReport::new("step");
/// r.note("kernel", "pointer_chase");
/// r.metric("cycles_per_sec", 1.25e7);
/// assert!(r.to_json().contains("\"cycles_per_sec\""));
/// ```
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    notes: Vec<(String, String)>,
    metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// Starts a report named `name` (the file becomes `BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> BenchReport {
        BenchReport { name: name.into(), notes: Vec::new(), metrics: Vec::new() }
    }

    /// Adds a string annotation.
    pub fn note(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.notes.push((key.into(), value.into()));
        self
    }

    /// Adds a numeric metric.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.push((key.into(), value));
        self
    }

    /// The numeric metrics collected so far, in insertion order.
    pub fn metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut fields = vec![(String::from("bench"), Json::str(self.name.clone()))];
        fields.extend(self.notes.iter().map(|(k, v)| (k.clone(), Json::str(v.clone()))));
        fields.extend(self.metrics.iter().map(|(k, v)| (k.clone(), Json::Num(*v))));
        Json::Obj(fields).render()
    }

    /// Writes `BENCH_<name>.json` into `dir` atomically through `sink`
    /// and returns the path.
    pub fn write_with(
        &self,
        sink: &dyn ArtifactSink,
        dir: impl Into<PathBuf>,
    ) -> io::Result<PathBuf> {
        let mut path = dir.into();
        path.push(format!("BENCH_{}.json", self.name));
        sink.write_atomic(&path, &self.to_json())?;
        Ok(path)
    }

    /// Writes `BENCH_<name>.json` into `dir` and returns the path.
    pub fn write_to(&self, dir: impl Into<PathBuf>) -> io::Result<PathBuf> {
        self.write_with(&FsSink, dir)
    }

    /// Writes `BENCH_<name>.json` into the current directory.
    pub fn write(&self) -> io::Result<PathBuf> {
        self.write_to(".")
    }
}

/// Parses the numeric metrics out of a flat `BENCH_*.json` report (the
/// shape [`BenchReport::to_json`] writes: one `"key": value` pair per
/// line). String notes are skipped. Used by the CI perf-regression gate to
/// read the committed baseline without a JSON dependency.
pub fn parse_metrics(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else { continue };
        let key = key.trim();
        if key.len() < 2 || !key.starts_with('"') || !key.ends_with('"') {
            continue;
        }
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((key[1..key.len() - 1].to_string(), v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_valid_shape() {
        let mut r = BenchReport::new("step");
        r.note("kernel", "pointer_chase");
        r.metric("speedup", 3.5);
        r.metric("cycles", 600227.0);
        let json = r.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"bench\": \"step\""));
        assert!(json.contains("\"speedup\": 3.5"));
        assert!(json.contains("\"cycles\": 600227"));
        // No trailing comma before the closing brace.
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn parse_metrics_round_trips_a_report() {
        let mut r = BenchReport::new("step");
        r.note("quick_mode", "yes");
        r.metric("a_cycles_per_sec", 1234.5);
        r.metric("cycles", 600227.0);
        let parsed = parse_metrics(&r.to_json());
        assert_eq!(
            parsed,
            vec![("a_cycles_per_sec".to_string(), 1234.5), ("cycles".to_string(), 600227.0)],
            "string notes are skipped, numbers survive"
        );
    }

    #[test]
    fn bench_write_creates_named_file() {
        let dir = std::env::temp_dir();
        let mut r = BenchReport::new("emitter_test");
        r.metric("x", 1.0);
        let path = r.write_to(&dir).expect("writable temp dir");
        assert!(path.ends_with("BENCH_emitter_test.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x\": 1"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn lab_report_writes_merged_and_per_scenario_files() {
        use crate::scenario::{RunContext, Scenario, ScenarioRun};
        fn noop(ctx: &RunContext) -> ScenarioRun {
            let s = Scenario { name: "noop", title: "t", paper_ref: "r", run: noop };
            let mut run = ScenarioRun::new(&s, ctx);
            run.check("ok", "always holds", true, "yes");
            run
        }
        let report = LabReport { runs: vec![noop(&RunContext::quick()).into()] };
        assert!(report.passed());
        assert!(!report.partial_results());
        assert_eq!(report.invariant_count(), 1);
        let dir = std::env::temp_dir().join(format!("lab_artifacts_{}", std::process::id()));
        let paths = report.write_artifacts(&dir).expect("writable temp dir");
        assert_eq!(paths.len(), 2);
        assert!(paths[0].ends_with(LAB_REPORT_NAME));
        assert!(paths[1].ends_with("noop.json"));
        let merged = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(merged.contains("\"scenario_count\": 1"));
        assert!(merged.contains("\"passed\": true"));
        let _ = std::fs::remove_file(&paths[0]);
        let _ = std::fs::remove_file(&paths[1]);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn write_artifacts_clears_stale_scenario_files() {
        use crate::scenario::{RunContext, Scenario, ScenarioRun};
        fn noop(ctx: &RunContext) -> ScenarioRun {
            let s = Scenario { name: "noop", title: "t", paper_ref: "r", run: noop };
            ScenarioRun::new(&s, ctx)
        }
        let dir = std::env::temp_dir().join(format!("lab_stale_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A leftover from an earlier, larger campaign plus a non-JSON file.
        std::fs::write(dir.join("stale_scenario.json"), "{}").unwrap();
        std::fs::write(dir.join("keep.txt"), "not an artifact").unwrap();
        let report = LabReport { runs: vec![noop(&RunContext::quick()).into()] };
        report.write_artifacts(&dir).unwrap();
        assert!(!dir.join("stale_scenario.json").exists(), "stale artifact must be cleared");
        assert!(dir.join("keep.txt").exists(), "non-JSON files are left alone");
        assert!(dir.join(LAB_REPORT_NAME).exists());
        assert!(dir.join("noop.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failures_name_scenario_and_invariant() {
        use crate::scenario::{RunContext, Scenario, ScenarioRun};
        fn failing(ctx: &RunContext) -> ScenarioRun {
            let s = Scenario { name: "bad", title: "t", paper_ref: "r", run: failing };
            let mut run = ScenarioRun::new(&s, ctx);
            run.check("broken", "never holds", false, "no");
            run
        }
        let report = LabReport { runs: vec![failing(&RunContext::quick()).into()] };
        assert!(!report.passed());
        assert_eq!(report.failures(), vec![("bad".to_string(), "broken".to_string())]);
    }

    #[test]
    fn errored_scenario_marks_results_partial() {
        use crate::scenario::{RunContext, Scenario, ScenarioRun};
        fn dead(ctx: &RunContext) -> ScenarioRun {
            let s = Scenario { name: "dead", title: "t", paper_ref: "r", run: dead };
            let mut run = ScenarioRun::new(&s, ctx);
            run.error = Some("cycle budget exceeded: mcf".to_string());
            run
        }
        let report = LabReport { runs: vec![dead(&RunContext::quick()).into()] };
        assert!(!report.passed());
        assert!(report.partial_results());
        assert_eq!(report.failures(), vec![("dead".to_string(), "run_error".to_string())]);
        let json = report.to_json().render();
        assert!(json.contains("\"partial_results\": true"));
        assert!(json.contains("\"error\": \"cycle budget exceeded: mcf\""));
    }

    #[test]
    fn journaled_entry_splices_byte_identically() {
        use crate::scenario::{RunContext, Scenario, ScenarioRun};
        fn noop(ctx: &RunContext) -> ScenarioRun {
            let s = Scenario { name: "noop", title: "t", paper_ref: "r", run: noop };
            let mut run = ScenarioRun::new(&s, ctx);
            run.check("ok", "always holds", true, "yes");
            run
        }
        let run = noop(&RunContext::quick());
        let direct = LabReport { runs: vec![run.clone().into()] };
        let mut artifact = run.to_json().render();
        artifact.pop(); // journal records the text without the newline
        let resumed = LabReport {
            runs: vec![LabEntry::Journaled {
                name: "noop".to_string(),
                invariant_count: 1,
                json: artifact,
            }],
        };
        assert_eq!(
            resumed.to_json().render(),
            direct.to_json().render(),
            "a journaled entry reproduces the uninterrupted report byte for byte"
        );
        assert_eq!(resumed.invariant_count(), 1);
        assert!(resumed.passed());
    }
}
