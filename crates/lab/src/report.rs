//! Artifact emission: per-scenario JSON files plus the merged
//! `LAB_report.json` the CI reproduction gate checks, and the flat
//! `BENCH_*.json` performance report (moved here from `specrun-bench` so
//! the legacy binaries can be thin aliases without a dependency cycle).

use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::scenario::ScenarioRun;

/// File name of the merged campaign report.
pub const LAB_REPORT_NAME: &str = "LAB_report.json";

/// A completed campaign: the scenario runs in execution order.
#[derive(Debug, Clone, Default)]
pub struct LabReport {
    /// Per-scenario results, in execution order.
    pub runs: Vec<ScenarioRun>,
}

impl LabReport {
    /// Whether every invariant of every scenario held.
    pub fn passed(&self) -> bool {
        self.runs.iter().all(ScenarioRun::passed)
    }

    /// Total number of checked invariants.
    pub fn invariant_count(&self) -> usize {
        self.runs.iter().map(|r| r.invariants.len()).sum()
    }

    /// Every failed invariant, with its scenario name.
    pub fn failures(&self) -> Vec<(String, String)> {
        self.runs
            .iter()
            .flat_map(|r| r.failures().into_iter().map(|i| (r.name.clone(), i.name.clone())))
            .collect()
    }

    /// The merged report object.
    pub fn to_json(&self) -> Json {
        let scenarios = self.runs.iter().map(ScenarioRun::to_json).collect();
        Json::obj(vec![
            ("lab".into(), Json::str("specrun")),
            ("scenario_count".into(), Json::Num(self.runs.len() as f64)),
            ("invariant_count".into(), Json::Num(self.invariant_count() as f64)),
            ("passed".into(), Json::Bool(self.passed())),
            ("scenarios".into(), Json::Arr(scenarios)),
        ])
    }

    /// Writes `artifacts_dir/<scenario>.json` per run plus the merged
    /// [`LAB_REPORT_NAME`] into the same directory — everything lands
    /// inside the directory the caller named, so concurrent campaigns
    /// with distinct `--artifacts-dir`s never share an output path.
    /// Any `.json` file already in the directory is removed first: the
    /// merged report must describe exactly the per-scenario files beside
    /// it, so a subset run cannot leave stale artifacts from an earlier
    /// campaign mixed in. Returns every path written, merged report first.
    pub fn write_artifacts(&self, artifacts_dir: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(artifacts_dir)?;
        for entry in std::fs::read_dir(artifacts_dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json") && path.is_file() {
                std::fs::remove_file(&path)?;
            }
        }
        let report_path = artifacts_dir.join(LAB_REPORT_NAME);
        let mut paths = vec![report_path.clone()];
        std::fs::write(&report_path, self.to_json().render())?;
        for run in &self.runs {
            let path = artifacts_dir.join(format!("{}.json", run.name));
            std::fs::write(&path, run.to_json().render())?;
            paths.push(path);
        }
        Ok(paths)
    }
}

/// A machine-readable benchmark report, serialized as `BENCH_<name>.json`.
///
/// The format is a flat JSON object: string notes and numeric metrics. No
/// serde in this offline build — the writer escapes and formats by hand.
///
/// ```
/// let mut r = specrun_lab::BenchReport::new("step");
/// r.note("kernel", "pointer_chase");
/// r.metric("cycles_per_sec", 1.25e7);
/// assert!(r.to_json().contains("\"cycles_per_sec\""));
/// ```
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    notes: Vec<(String, String)>,
    metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// Starts a report named `name` (the file becomes `BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> BenchReport {
        BenchReport { name: name.into(), notes: Vec::new(), metrics: Vec::new() }
    }

    /// Adds a string annotation.
    pub fn note(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.notes.push((key.into(), value.into()));
        self
    }

    /// Adds a numeric metric.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.push((key.into(), value));
        self
    }

    /// The numeric metrics collected so far, in insertion order.
    pub fn metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut fields = vec![(String::from("bench"), Json::str(self.name.clone()))];
        fields.extend(self.notes.iter().map(|(k, v)| (k.clone(), Json::str(v.clone()))));
        fields.extend(self.metrics.iter().map(|(k, v)| (k.clone(), Json::Num(*v))));
        Json::Obj(fields).render()
    }

    /// Writes `BENCH_<name>.json` into `dir` and returns the path.
    pub fn write_to(&self, dir: impl Into<PathBuf>) -> io::Result<PathBuf> {
        let mut path = dir.into();
        path.push(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes `BENCH_<name>.json` into the current directory.
    pub fn write(&self) -> io::Result<PathBuf> {
        self.write_to(".")
    }
}

/// Parses the numeric metrics out of a flat `BENCH_*.json` report (the
/// shape [`BenchReport::to_json`] writes: one `"key": value` pair per
/// line). String notes are skipped. Used by the CI perf-regression gate to
/// read the committed baseline without a JSON dependency.
pub fn parse_metrics(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else { continue };
        let key = key.trim();
        if key.len() < 2 || !key.starts_with('"') || !key.ends_with('"') {
            continue;
        }
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((key[1..key.len() - 1].to_string(), v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_valid_shape() {
        let mut r = BenchReport::new("step");
        r.note("kernel", "pointer_chase");
        r.metric("speedup", 3.5);
        r.metric("cycles", 600227.0);
        let json = r.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"bench\": \"step\""));
        assert!(json.contains("\"speedup\": 3.5"));
        assert!(json.contains("\"cycles\": 600227"));
        // No trailing comma before the closing brace.
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn parse_metrics_round_trips_a_report() {
        let mut r = BenchReport::new("step");
        r.note("quick_mode", "yes");
        r.metric("a_cycles_per_sec", 1234.5);
        r.metric("cycles", 600227.0);
        let parsed = parse_metrics(&r.to_json());
        assert_eq!(
            parsed,
            vec![("a_cycles_per_sec".to_string(), 1234.5), ("cycles".to_string(), 600227.0)],
            "string notes are skipped, numbers survive"
        );
    }

    #[test]
    fn bench_write_creates_named_file() {
        let dir = std::env::temp_dir();
        let mut r = BenchReport::new("emitter_test");
        r.metric("x", 1.0);
        let path = r.write_to(&dir).expect("writable temp dir");
        assert!(path.ends_with("BENCH_emitter_test.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x\": 1"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn lab_report_writes_merged_and_per_scenario_files() {
        use crate::scenario::{RunContext, Scenario, ScenarioRun};
        fn noop(ctx: &RunContext) -> ScenarioRun {
            let s = Scenario { name: "noop", title: "t", paper_ref: "r", run: noop };
            let mut run = ScenarioRun::new(&s, ctx);
            run.check("ok", "always holds", true, "yes");
            run
        }
        let report = LabReport { runs: vec![noop(&RunContext::quick())] };
        assert!(report.passed());
        assert_eq!(report.invariant_count(), 1);
        let dir = std::env::temp_dir().join(format!("lab_artifacts_{}", std::process::id()));
        let paths = report.write_artifacts(&dir).expect("writable temp dir");
        assert_eq!(paths.len(), 2);
        assert!(paths[0].ends_with(LAB_REPORT_NAME));
        assert!(paths[1].ends_with("noop.json"));
        let merged = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(merged.contains("\"scenario_count\": 1"));
        assert!(merged.contains("\"passed\": true"));
        let _ = std::fs::remove_file(&paths[0]);
        let _ = std::fs::remove_file(&paths[1]);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn write_artifacts_clears_stale_scenario_files() {
        use crate::scenario::{RunContext, Scenario, ScenarioRun};
        fn noop(ctx: &RunContext) -> ScenarioRun {
            let s = Scenario { name: "noop", title: "t", paper_ref: "r", run: noop };
            ScenarioRun::new(&s, ctx)
        }
        let dir = std::env::temp_dir().join(format!("lab_stale_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A leftover from an earlier, larger campaign plus a non-JSON file.
        std::fs::write(dir.join("stale_scenario.json"), "{}").unwrap();
        std::fs::write(dir.join("keep.txt"), "not an artifact").unwrap();
        let report = LabReport { runs: vec![noop(&RunContext::quick())] };
        report.write_artifacts(&dir).unwrap();
        assert!(!dir.join("stale_scenario.json").exists(), "stale artifact must be cleared");
        assert!(dir.join("keep.txt").exists(), "non-JSON files are left alone");
        assert!(dir.join(LAB_REPORT_NAME).exists());
        assert!(dir.join("noop.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failures_name_scenario_and_invariant() {
        use crate::scenario::{RunContext, Scenario, ScenarioRun};
        fn failing(ctx: &RunContext) -> ScenarioRun {
            let s = Scenario { name: "bad", title: "t", paper_ref: "r", run: failing };
            let mut run = ScenarioRun::new(&s, ctx);
            run.check("broken", "never holds", false, "no");
            run
        }
        let report = LabReport { runs: vec![failing(&RunContext::quick())] };
        assert!(!report.passed());
        assert_eq!(report.failures(), vec![("bad".to_string(), "broken".to_string())]);
    }
}
