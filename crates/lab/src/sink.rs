//! Crash-safe artifact IO: the [`ArtifactSink`] boundary every campaign
//! write goes through.
//!
//! Two disciplines matter:
//!
//! * **atomic replace** — [`ArtifactSink::write_atomic`] writes a sibling
//!   temp file, fsyncs it, then renames it over the target. A crash at any
//!   point leaves either the old artifact or the new one, never a
//!   truncated hybrid — the property the byte-compare CI jobs and the
//!   `--resume` journals depend on;
//! * **injectable faults** — campaign code takes `&dyn ArtifactSink`, so
//!   the chaos harness can swap in a [`ChaosSink`] that fails chosen
//!   operations deterministically. The failure paths themselves become
//!   testable instead of asserted.
//!
//! Append-path writes (the campaign journal) go through
//! [`ArtifactSink::append_line`]: one `O_APPEND` write per line, no
//! per-line fsync — a torn final line after a crash is expected and the
//! journal reader tolerates it.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The campaign IO boundary. Implementations must be shareable across the
/// trial fan-out threads.
pub trait ArtifactSink: Sync {
    /// Atomically replaces `path` with `contents` (temp file + rename).
    fn write_atomic(&self, path: &Path, contents: &str) -> io::Result<()>;

    /// Binary twin of [`write_atomic`](ArtifactSink::write_atomic): the
    /// same temp-file + fsync + rename protocol for non-UTF-8 artifacts
    /// (trace logs). Default implementation writes straight to the
    /// filesystem; fault-injecting sinks override it so trace writes are
    /// chaos-testable like every other artifact.
    fn write_atomic_bytes(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = tmp_path(path);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Appends `line` (a newline is added) to `path`, creating it if
    /// missing. Not fsynced per line; the last line may tear on a crash.
    fn append_line(&self, path: &Path, line: &str) -> io::Result<()>;

    /// Removes a file; a missing file counts as success.
    fn remove(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }
}

/// Sibling temp path used by the atomic-write protocol: `<file>.tmp`, so
/// the artifact directory's `*.json` stale-clearing never matches it, and
/// a leftover from a crash is simply overwritten by the next write.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// The real filesystem sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsSink;

impl ArtifactSink for FsSink {
    fn write_atomic(&self, path: &Path, contents: &str) -> io::Result<()> {
        let tmp = tmp_path(path);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(contents.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    fn append_line(&self, path: &Path, line: &str) -> io::Result<()> {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(buf.as_bytes())
    }
}

/// A deterministic fault-injecting sink for the chaos harness: every
/// `write_atomic` / `append_line` call gets a global operation number, and
/// the operations named in `fail_ops` fail with an injected IO error.
///
/// In `torn` mode a failing `write_atomic` additionally leaves the temp
/// file behind with the new contents but never renames it — the on-disk
/// state of a crash *between* the temp write and the rename, which the
/// atomic protocol must shrug off.
pub struct ChaosSink<'a> {
    inner: &'a dyn ArtifactSink,
    fail_ops: Vec<u64>,
    torn: bool,
    counter: AtomicU64,
}

impl<'a> ChaosSink<'a> {
    /// Wraps `inner`, failing the operations whose global sequence numbers
    /// (0-based, across both write kinds) appear in `fail_ops`.
    pub fn new(inner: &'a dyn ArtifactSink, fail_ops: &[u64]) -> ChaosSink<'a> {
        ChaosSink { inner, fail_ops: fail_ops.to_vec(), torn: false, counter: AtomicU64::new(0) }
    }

    /// Switches failing `write_atomic` calls to crash-between-temp-and-
    /// rename behaviour (temp file left behind).
    pub fn torn(mut self) -> ChaosSink<'a> {
        self.torn = true;
        self
    }

    /// Operations observed so far (used to size fault plans).
    pub fn ops_seen(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    fn next_op_fails(&self) -> bool {
        let op = self.counter.fetch_add(1, Ordering::Relaxed);
        self.fail_ops.contains(&op)
    }

    fn injected(path: &Path) -> io::Error {
        io::Error::other(format!("chaos: injected IO fault on {}", path.display()))
    }
}

impl ArtifactSink for ChaosSink<'_> {
    fn write_atomic(&self, path: &Path, contents: &str) -> io::Result<()> {
        if self.next_op_fails() {
            if self.torn {
                // Simulate dying after the temp write, before the rename.
                let _ = std::fs::write(tmp_path(path), contents);
            }
            return Err(Self::injected(path));
        }
        self.inner.write_atomic(path, contents)
    }

    fn write_atomic_bytes(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.next_op_fails() {
            if self.torn {
                // Simulate dying after the temp write, before the rename.
                let _ = std::fs::write(tmp_path(path), bytes);
            }
            return Err(Self::injected(path));
        }
        self.inner.write_atomic_bytes(path, bytes)
    }

    fn append_line(&self, path: &Path, line: &str) -> io::Result<()> {
        if self.next_op_fails() {
            return Err(Self::injected(path));
        }
        self.inner.append_line(path, line)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }
}

/// Adapts an [`ArtifactSink`] to the trace crate's byte-oriented
/// [`specrun_trace::TraceSink`], so trace logs written by lab commands ride
/// the same atomic-replace protocol — and the same chaos fault injection —
/// as every JSON artifact.
pub struct ArtifactTraceSink<'a>(pub &'a dyn ArtifactSink);

impl specrun_trace::TraceSink for ArtifactTraceSink<'_> {
    fn write_trace(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.0.write_atomic_bytes(path, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sink_{}_{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_replaces_and_cleans_its_temp() {
        let dir = scratch("atomic");
        let path = dir.join("artifact.json");
        FsSink.write_atomic(&path, "{\"v\": 1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\": 1}\n");
        FsSink.write_atomic(&path, "{\"v\": 2}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\": 2}\n");
        assert!(!tmp_path(&path).exists(), "rename consumed the temp file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_line_accumulates_and_creates() {
        let dir = scratch("append");
        let path = dir.join("journal");
        FsSink.append_line(&path, "a").unwrap();
        FsSink.append_line(&path, "b").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\nb\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_tolerates_missing_files() {
        let dir = scratch("remove");
        let path = dir.join("gone.json");
        FsSink.remove(&path).unwrap();
        FsSink.write_atomic(&path, "x").unwrap();
        FsSink.remove(&path).unwrap();
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_bytes_replaces_and_cleans_its_temp() {
        let dir = scratch("bytes");
        let path = dir.join("trace.bin");
        FsSink.write_atomic_bytes(&path, &[0xde, 0xad, 0x00, 0xbe]).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), [0xde, 0xad, 0x00, 0xbe]);
        FsSink.write_atomic_bytes(&path, &[0x01]).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), [0x01]);
        assert!(!tmp_path(&path).exists(), "rename consumed the temp file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_sink_injects_into_the_bytes_path_too() {
        use specrun_trace::TraceSink as _;
        let dir = scratch("chaos_bytes");
        let path = dir.join("t.bin");
        let chaos = ChaosSink::new(&FsSink, &[0]).torn();
        let sink = ArtifactTraceSink(&chaos);
        assert!(sink.write_trace(&path, &[1, 2, 3]).is_err(), "op 0 injected");
        assert!(!path.exists(), "target untouched");
        assert_eq!(std::fs::read(tmp_path(&path)).unwrap(), [1, 2, 3], "temp left behind");
        sink.write_trace(&path, &[4, 5]).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), [4, 5]);
        assert!(!tmp_path(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_sink_fails_the_named_ops_only() {
        let dir = scratch("chaos");
        let path = dir.join("a.json");
        let chaos = ChaosSink::new(&FsSink, &[1]);
        chaos.write_atomic(&path, "first").unwrap();
        assert!(chaos.append_line(&dir.join("j"), "line").is_err(), "op 1 injected");
        chaos.write_atomic(&path, "third").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "third");
        assert_eq!(chaos.ops_seen(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_mode_leaves_temp_without_touching_target() {
        let dir = scratch("torn");
        let path = dir.join("r.json");
        FsSink.write_atomic(&path, "old").unwrap();
        let chaos = ChaosSink::new(&FsSink, &[0]).torn();
        assert!(chaos.write_atomic(&path, "new").is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "old", "target untouched");
        assert_eq!(std::fs::read_to_string(tmp_path(&path)).unwrap(), "new", "temp left behind");
        // The next successful write overwrites the orphaned temp.
        FsSink.write_atomic(&path, "newer").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "newer");
        assert!(!tmp_path(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
