//! A minimal, deterministic JSON value, writer and reader.
//!
//! No serde in this offline build — the lab's artifacts are emitted by
//! hand. Two properties matter more than generality:
//!
//! * **order preservation** — objects keep insertion order, so an artifact
//!   rendered from the same data is byte-identical across runs (the CI
//!   reproduction gate diffs artifacts byte for byte);
//! * **stable number formatting** — integral values render without a
//!   decimal point, everything else uses Rust's shortest-roundtrip `{}`
//!   formatting, and non-finite values become `null`.
//!
//! [`Json::parse`] is the matching reader — a small recursive-descent
//! parser for campaign spec files (`specrun-lab pool run <spec.json>`).
//! It accepts standard JSON and round-trips everything [`Json::render`]
//! emits; errors carry a byte offset so a hand-edited spec fails loudly
//! and locatably, never half-decoded.

use std::fmt::Write as _;

/// An ordered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (rendered via [`format_number`]).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON text, embedded verbatim except that every line
    /// after the first is re-indented to the embedding depth. Rendering a
    /// value at depth 0 and embedding it as `Raw` reproduces byte for byte
    /// what rendering the original value in place would have produced —
    /// the property campaign resume relies on when it splices journaled
    /// per-scenario artifacts back into the merged report. The text must
    /// not carry a trailing newline.
    Raw(String),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(String, Json)>) -> Json {
        Json::Obj(fields)
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders the value as pretty-printed JSON with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&format_number(*v)),
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    out.push_str(&escape(key));
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
            Json::Raw(text) => {
                // Strings never contain raw newlines (escape() encodes
                // them), so every '\n' in rendered JSON is structural and
                // re-indenting per line is safe.
                for (i, line) in text.lines().enumerate() {
                    if i > 0 {
                        out.push('\n');
                        pad(out, indent);
                    }
                    out.push_str(line);
                }
            }
        }
    }

    /// Parses JSON text into a value. Objects keep their source order, so
    /// `parse` inverts [`Json::render`] (modulo `Raw`, which parses back
    /// as the structure it rendered). Errors name the byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The element slice, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Nesting cap for [`Json::parse`]: deeper documents are rejected rather
/// than risking recursion exhaustion on adversarial input. Lab artifacts
/// nest four or five levels.
const MAX_PARSE_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(self.err(&format!("unexpected byte {:?}", b as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]` in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|_| self.err("expected a string object key"))?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}` in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        let start = self.pos;
        if !self.eat(b'"') {
            return Err(self.err("expected `\"`"));
        }
        // Scan to the closing quote, honouring backslash escapes, then
        // hand the whole literal to `unescape` — one decoder, not two.
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    self.pos += 1;
                    let literal = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    return unescape(literal).ok_or_else(|| self.err("malformed escape in string"));
                }
                b'\\' => {
                    self.pos += 2; // skip the escape introducer and its payload byte
                }
                _ => self.pos += 1,
            }
        }
        self.pos = start;
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => {
                self.pos = start;
                Err(self.err(&format!("malformed number `{text}`")))
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Formats a number the way every lab artifact does: integral values
/// without a decimal point, non-finite values as `null`.
pub fn format_number(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Escapes a string into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Decodes a quoted JSON string literal produced by [`escape`] back into
/// the original text. Returns `None` on anything malformed — callers
/// (journal resume) treat that as corruption, not as data.
pub fn unescape(literal: &str) -> Option<String> {
    let inner = literal.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            return None; // an unescaped quote means we clipped the literal wrong
        }
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let code: String = chars.by_ref().take(4).collect();
                if code.len() != 4 {
                    return None;
                }
                let v = u32::from_str_radix(&code, 16).ok()?;
                out.push(char::from_u32(v)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::obj(vec![
            ("name".into(), Json::str("fig7")),
            ("passed".into(), Json::Bool(true)),
            ("metrics".into(), Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("empty".into(), Json::Obj(Vec::new())),
        ]);
        let s = v.render();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"name\": \"fig7\""));
        assert!(s.contains("\"passed\": true"));
        assert!(s.contains("2.5"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.ends_with("}\n"));
        assert!(!s.contains(",\n}"), "no trailing commas: {s}");
    }

    #[test]
    fn number_formatting_is_stable() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(-2.0), "-2");
        assert_eq!(format_number(0.5), "0.5");
        assert_eq!(format_number(f64::INFINITY), "null");
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn raw_embedding_reproduces_in_place_rendering() {
        let inner = Json::obj(vec![
            ("name".into(), Json::str("fig7")),
            ("items".into(), Json::Arr(vec![Json::Num(1.0), Json::str("two\nlines")])),
            ("empty".into(), Json::Obj(Vec::new())),
        ]);
        let direct =
            Json::obj(vec![("scenarios".into(), Json::Arr(vec![inner.clone(), inner.clone()]))]);
        // Render the inner value standalone (depth 0), then splice it back
        // as Raw — the bytes must match rendering it in place.
        let mut standalone = inner.render();
        standalone.pop(); // drop render()'s trailing newline
        let spliced = Json::obj(vec![(
            "scenarios".into(),
            Json::Arr(vec![Json::Raw(standalone.clone()), Json::Raw(standalone)]),
        )]);
        assert_eq!(spliced.render(), direct.render());
    }

    #[test]
    fn unescape_inverts_escape() {
        for s in ["plain", "a\"b\\c\n", "\ttabs\r", "\u{1}control", "ünïcode"] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s), "round trip {s:?}");
        }
        assert_eq!(unescape("\"a\\u0041b\"").as_deref(), Some("aAb"));
        assert!(unescape("no quotes").is_none());
        assert!(unescape("\"trailing backslash\\\"").is_none(), "lone backslash eats the quote");
        assert!(unescape("\"bad \\q escape\"").is_none());
        assert!(unescape("\"embedded \" quote\"").is_none());
    }

    #[test]
    fn parse_inverts_render() {
        let v = Json::obj(vec![
            ("name".into(), Json::str("pool")),
            ("count".into(), Json::Num(24.0)),
            ("rate".into(), Json::Num(0.5)),
            ("neg".into(), Json::Num(-3.0)),
            ("on".into(), Json::Bool(true)),
            ("off".into(), Json::Bool(false)),
            ("nothing".into(), Json::Null),
            ("text".into(), Json::str("two\nlines \"quoted\"")),
            ("items".into(), Json::Arr(vec![Json::Num(1.0), Json::str("x"), Json::Null])),
            ("empty_arr".into(), Json::Arr(Vec::new())),
            ("empty_obj".into(), Json::Obj(Vec::new())),
            ("nested".into(), Json::obj(vec![("k".into(), Json::Arr(vec![Json::Num(2.5)]))])),
        ]);
        let parsed = Json::parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.render(), v.render(), "byte-stable through a round trip");
    }

    #[test]
    fn parse_accepts_compact_and_whitespace_heavy_text() {
        let compact = Json::parse("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":true}}").unwrap();
        let spread =
            Json::parse("  {\n \"a\" : [ 1 ,\t2.5, -3e2 ] ,\r\n\"b\":{ \"c\" : true } }  ")
                .unwrap();
        assert_eq!(compact, spread);
        assert_eq!(compact.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(compact.get("a").unwrap().as_arr().unwrap()[2], Json::Num(-300.0));
        assert_eq!(compact.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for (text, why) in [
            ("", "empty"),
            ("{\"a\": 1", "unclosed object"),
            ("[1, 2", "unclosed array"),
            ("[1 2]", "missing comma"),
            ("{\"a\" 1}", "missing colon"),
            ("{a: 1}", "bare key"),
            ("\"unterminated", "unterminated string"),
            ("\"bad \\q escape\"", "bad escape"),
            ("01x", "trailing garbage"),
            ("truth", "misspelt keyword"),
            ("-", "lone minus"),
            ("1e999", "non-finite number"),
            ("{} {}", "two documents"),
        ] {
            let err = Json::parse(text).unwrap_err();
            assert!(err.contains("json parse error at byte"), "{why}: {err}");
        }
        let deep = format!("{}1{}", "[".repeat(80), "]".repeat(80));
        assert!(Json::parse(&deep).unwrap_err().contains("nesting too deep"));
    }

    #[test]
    fn accessors_navigate_without_panicking() {
        let v = Json::parse("{\"s\": \"hi\", \"n\": 7}").unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("n").and_then(Json::as_num), Some(7.0));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("s"), None);
        assert_eq!(Json::Num(1.0).as_str(), None);
        assert_eq!(Json::str("x").as_arr(), None);
    }

    #[test]
    fn rendering_is_deterministic() {
        let v = Json::obj(vec![("b".into(), Json::Num(1.0)), ("a".into(), Json::Num(2.0))]);
        assert_eq!(v.render(), v.render());
        // Insertion order, not sorted order.
        let s = v.render();
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
    }
}
