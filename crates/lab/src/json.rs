//! A minimal, deterministic JSON value and writer.
//!
//! No serde in this offline build — the lab's artifacts are emitted by
//! hand. Two properties matter more than generality:
//!
//! * **order preservation** — objects keep insertion order, so an artifact
//!   rendered from the same data is byte-identical across runs (the CI
//!   reproduction gate diffs artifacts byte for byte);
//! * **stable number formatting** — integral values render without a
//!   decimal point, everything else uses Rust's shortest-roundtrip `{}`
//!   formatting, and non-finite values become `null`.

use std::fmt::Write as _;

/// An ordered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (rendered via [`format_number`]).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON text, embedded verbatim except that every line
    /// after the first is re-indented to the embedding depth. Rendering a
    /// value at depth 0 and embedding it as `Raw` reproduces byte for byte
    /// what rendering the original value in place would have produced —
    /// the property campaign resume relies on when it splices journaled
    /// per-scenario artifacts back into the merged report. The text must
    /// not carry a trailing newline.
    Raw(String),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(String, Json)>) -> Json {
        Json::Obj(fields)
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders the value as pretty-printed JSON with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&format_number(*v)),
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    out.push_str(&escape(key));
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
            Json::Raw(text) => {
                // Strings never contain raw newlines (escape() encodes
                // them), so every '\n' in rendered JSON is structural and
                // re-indenting per line is safe.
                for (i, line) in text.lines().enumerate() {
                    if i > 0 {
                        out.push('\n');
                        pad(out, indent);
                    }
                    out.push_str(line);
                }
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Formats a number the way every lab artifact does: integral values
/// without a decimal point, non-finite values as `null`.
pub fn format_number(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Escapes a string into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Decodes a quoted JSON string literal produced by [`escape`] back into
/// the original text. Returns `None` on anything malformed — callers
/// (journal resume) treat that as corruption, not as data.
pub fn unescape(literal: &str) -> Option<String> {
    let inner = literal.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            return None; // an unescaped quote means we clipped the literal wrong
        }
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let code: String = chars.by_ref().take(4).collect();
                if code.len() != 4 {
                    return None;
                }
                let v = u32::from_str_radix(&code, 16).ok()?;
                out.push(char::from_u32(v)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::obj(vec![
            ("name".into(), Json::str("fig7")),
            ("passed".into(), Json::Bool(true)),
            ("metrics".into(), Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("empty".into(), Json::Obj(Vec::new())),
        ]);
        let s = v.render();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"name\": \"fig7\""));
        assert!(s.contains("\"passed\": true"));
        assert!(s.contains("2.5"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.ends_with("}\n"));
        assert!(!s.contains(",\n}"), "no trailing commas: {s}");
    }

    #[test]
    fn number_formatting_is_stable() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(-2.0), "-2");
        assert_eq!(format_number(0.5), "0.5");
        assert_eq!(format_number(f64::INFINITY), "null");
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn raw_embedding_reproduces_in_place_rendering() {
        let inner = Json::obj(vec![
            ("name".into(), Json::str("fig7")),
            ("items".into(), Json::Arr(vec![Json::Num(1.0), Json::str("two\nlines")])),
            ("empty".into(), Json::Obj(Vec::new())),
        ]);
        let direct =
            Json::obj(vec![("scenarios".into(), Json::Arr(vec![inner.clone(), inner.clone()]))]);
        // Render the inner value standalone (depth 0), then splice it back
        // as Raw — the bytes must match rendering it in place.
        let mut standalone = inner.render();
        standalone.pop(); // drop render()'s trailing newline
        let spliced = Json::obj(vec![(
            "scenarios".into(),
            Json::Arr(vec![Json::Raw(standalone.clone()), Json::Raw(standalone)]),
        )]);
        assert_eq!(spliced.render(), direct.render());
    }

    #[test]
    fn unescape_inverts_escape() {
        for s in ["plain", "a\"b\\c\n", "\ttabs\r", "\u{1}control", "ünïcode"] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s), "round trip {s:?}");
        }
        assert_eq!(unescape("\"a\\u0041b\"").as_deref(), Some("aAb"));
        assert!(unescape("no quotes").is_none());
        assert!(unescape("\"trailing backslash\\\"").is_none(), "lone backslash eats the quote");
        assert!(unescape("\"bad \\q escape\"").is_none());
        assert!(unescape("\"embedded \" quote\"").is_none());
    }

    #[test]
    fn rendering_is_deterministic() {
        let v = Json::obj(vec![("b".into(), Json::Num(1.0)), ("a".into(), Json::Num(2.0))]);
        assert_eq!(v.render(), v.render());
        // Insertion order, not sorted order.
        let s = v.render();
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
    }
}
