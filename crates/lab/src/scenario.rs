//! The declarative scenario model: every paper figure, table, variant
//! matrix and defense experiment is a [`Scenario`] value in the registry
//! instead of a standalone binary.
//!
//! A scenario bundles a name, the paper reference it reproduces, and a run
//! function that — given a [`RunContext`] — produces a [`ScenarioRun`]:
//! named metrics (via the [`MetricSource`] extraction traits), the
//! configuration digests and seeds that make the run auditable, the
//! human-readable table the legacy binary used to print, and a list of
//! **paper-claim invariants** ("secure runahead leakage = 0", "runahead
//! speedup > 1 on mcf") whose pass/fail the CI reproduction gate enforces.

use specrun_cpu::CpuConfig;
use specrun_workloads::metrics::MetricSet;

pub use specrun_workloads::metrics::MetricSource;

use crate::json::Json;

/// How a scenario should be executed.
#[derive(Debug, Clone)]
pub struct RunContext {
    /// Reduced-scale mode for CI: smaller kernels and fewer trials, same
    /// invariants. Quick runs are deterministic and byte-stable just like
    /// full runs — only the scale differs.
    pub quick: bool,
    /// Worker threads for parallel fan-out (`0` = all host cores). Results
    /// are thread-count-invariant by construction.
    pub threads: usize,
    /// Base seed for randomized trials (sweeps).
    pub seed: u64,
}

impl RunContext {
    /// Full-fidelity context (the legacy binaries' scale).
    pub fn full() -> RunContext {
        RunContext { quick: false, threads: 0, seed: DEFAULT_SEED }
    }

    /// Quick context (the CI reproduction gate's scale).
    pub fn quick() -> RunContext {
        RunContext { quick: true, ..RunContext::full() }
    }

    /// Picks `full` or `quick` depending on the mode.
    pub fn sized(&self, full: u32, quick: u32) -> u32 {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// The mode label recorded in artifacts.
    pub fn mode(&self) -> &'static str {
        if self.quick {
            "quick"
        } else {
            "full"
        }
    }
}

/// Default base seed for scenario randomness (sweeps); the same value the
/// pre-registry binaries used, so artifacts are comparable across the
/// restructure.
pub const DEFAULT_SEED: u64 = 0xf199;

/// One checked paper claim.
#[derive(Debug, Clone)]
pub struct Invariant {
    /// Short machine-readable identifier, e.g. `secure_runahead_blocks`.
    pub name: String,
    /// The paper claim being checked, as a sentence.
    pub claim: String,
    /// What the run actually observed (for the failure report).
    pub observed: String,
    /// Whether the claim held.
    pub passed: bool,
}

/// The result of executing one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Registry name (`fig7`, `table1`, …).
    pub name: String,
    /// Human-readable title.
    pub title: String,
    /// Paper reference (`Fig. 7`, `§6`, …).
    pub paper_ref: String,
    /// Mode label (`quick` / `full`).
    pub mode: String,
    /// Base seed the run used.
    pub seed: u64,
    /// Free-form string annotations (scale parameters, mostly).
    pub notes: Vec<(String, String)>,
    /// Flattened numeric results.
    pub metrics: MetricSet,
    /// FNV-1a digests of every machine configuration the run simulated,
    /// labelled. A digest change flags that an artifact diff stems from a
    /// config change, not a simulator change.
    pub config_digests: Vec<(String, u64)>,
    /// Checked paper claims.
    pub invariants: Vec<Invariant>,
    /// The human-readable report (what the legacy binary printed).
    pub lines: Vec<String>,
    /// Structured execution failure, when the scenario did not complete:
    /// the panic (or budget-exhaustion) message captured by
    /// [`Scenario::try_execute`]. A run with an error never passes.
    pub error: Option<String>,
}

impl ScenarioRun {
    /// Starts an empty run record for `scenario` under `ctx`.
    pub fn new(scenario: &Scenario, ctx: &RunContext) -> ScenarioRun {
        ScenarioRun {
            name: scenario.name.to_string(),
            title: scenario.title.to_string(),
            paper_ref: scenario.paper_ref.to_string(),
            mode: ctx.mode().to_string(),
            seed: ctx.seed,
            notes: Vec::new(),
            metrics: MetricSet::new(),
            config_digests: Vec::new(),
            invariants: Vec::new(),
            lines: Vec::new(),
            error: None,
        }
    }

    /// Adds a string annotation.
    pub fn note(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.notes.push((key.into(), value.into()));
    }

    /// Records a machine configuration digest under `label`.
    pub fn digest(&mut self, label: impl Into<String>, config: &CpuConfig) {
        self.config_digests.push((label.into(), config_digest(config)));
    }

    /// Records one paper-claim check.
    pub fn check(
        &mut self,
        name: impl Into<String>,
        claim: impl Into<String>,
        passed: bool,
        observed: impl std::fmt::Display,
    ) {
        self.invariants.push(Invariant {
            name: name.into(),
            claim: claim.into(),
            observed: observed.to_string(),
            passed,
        });
    }

    /// Appends a line to the human-readable report.
    pub fn line(&mut self, line: impl Into<String>) {
        self.lines.push(line.into());
    }

    /// Whether the scenario completed and every invariant held.
    pub fn passed(&self) -> bool {
        self.error.is_none() && self.invariants.iter().all(|i| i.passed)
    }

    /// The invariants that failed.
    pub fn failures(&self) -> Vec<&Invariant> {
        self.invariants.iter().filter(|i| !i.passed).collect()
    }

    /// Serializes the run as the per-scenario artifact object.
    ///
    /// Everything in here is deterministic for a fixed seed: metrics come
    /// from the simulator (thread-invariant), digests from the configs,
    /// and no wall-clock quantity is recorded — so re-running a scenario
    /// yields a byte-identical artifact.
    pub fn to_json(&self) -> Json {
        let notes = self.notes.iter().map(|(k, v)| (k.clone(), Json::str(v.clone()))).collect();
        let digests = self
            .config_digests
            .iter()
            .map(|(label, d)| (label.clone(), Json::str(format!("{d:016x}"))))
            .collect();
        let metrics =
            self.metrics.entries().iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect();
        let invariants = self
            .invariants
            .iter()
            .map(|i| {
                Json::obj(vec![
                    ("name".into(), Json::str(i.name.clone())),
                    ("claim".into(), Json::str(i.claim.clone())),
                    ("observed".into(), Json::str(i.observed.clone())),
                    ("passed".into(), Json::Bool(i.passed)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("scenario".into(), Json::str(self.name.clone())),
            ("title".into(), Json::str(self.title.clone())),
            ("paper_ref".into(), Json::str(self.paper_ref.clone())),
            ("mode".into(), Json::str(self.mode.clone())),
            // As a string: a u64 seed above 2^53 would be silently rounded
            // through an f64 JSON number, recording a seed that does not
            // reproduce the run.
            ("seed".into(), Json::str(self.seed.to_string())),
            ("passed".into(), Json::Bool(self.passed())),
            ("error".into(), self.error.as_ref().map_or(Json::Null, Json::str)),
            ("notes".into(), Json::Obj(notes)),
            ("config_digests".into(), Json::Obj(digests)),
            ("metrics".into(), Json::Obj(metrics)),
            ("invariants".into(), Json::Arr(invariants)),
        ])
    }
}

/// One registered experiment.
#[derive(Clone)]
pub struct Scenario {
    /// Registry name and legacy binary name (`fig7`, `defense`, …).
    pub name: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Paper reference.
    pub paper_ref: &'static str,
    /// Executes the experiment.
    pub run: fn(&RunContext) -> ScenarioRun,
}

impl Scenario {
    /// Runs the scenario under `ctx`. Panics propagate; campaign code
    /// uses [`Scenario::try_execute`] instead.
    pub fn execute(&self, ctx: &RunContext) -> ScenarioRun {
        (self.run)(ctx)
    }

    /// Runs the scenario, containing failure: a panicking scenario (a
    /// budget-exhaustion `run_workload` deep inside a sweep, an assert in
    /// the simulator) comes back as a [`ScenarioRun`] with
    /// [`ScenarioRun::error`] set — a reported failed entry in the merged
    /// report instead of a dead campaign.
    pub fn try_execute(&self, ctx: &RunContext) -> ScenarioRun {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (self.run)(ctx))) {
            Ok(run) => run,
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                let mut run = ScenarioRun::new(self, ctx);
                run.error = Some(message);
                run
            }
        }
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("paper_ref", &self.paper_ref)
            .finish()
    }
}

/// FNV-1a 64-bit digest of a machine configuration's `Debug` rendering.
///
/// `CpuConfig` derives `Debug` over every field, so any config change —
/// cache geometry, runahead policy, defense knobs — changes the digest.
pub fn config_digest(config: &CpuConfig) -> u64 {
    fnv1a(format!("{config:?}").as_bytes())
}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(ctx: &RunContext) -> ScenarioRun {
        let scenario =
            Scenario { name: "dummy", title: "A dummy scenario", paper_ref: "Fig. 0", run: dummy };
        let mut run = ScenarioRun::new(&scenario, ctx);
        run.metrics.push("x", 1.0);
        run.check("holds", "x equals one", true, "1");
        run
    }

    #[test]
    fn run_serializes_and_passes() {
        let run = dummy(&RunContext::quick());
        assert!(run.passed());
        let json = run.to_json().render();
        assert!(json.contains("\"scenario\": \"dummy\""));
        assert!(json.contains("\"mode\": \"quick\""));
        assert!(json.contains("\"x\": 1"));
        assert!(json.contains("\"passed\": true"));
    }

    #[test]
    fn failed_invariant_flips_passed() {
        let mut run = dummy(&RunContext::full());
        run.check("fails", "two equals three", false, "2 != 3");
        assert!(!run.passed());
        assert_eq!(run.failures().len(), 1);
        assert_eq!(run.failures()[0].name, "fails");
        assert!(run.to_json().render().contains("\"passed\": false"));
    }

    #[test]
    fn config_digest_tracks_config_changes() {
        let a = config_digest(&CpuConfig::default());
        assert_eq!(a, config_digest(&CpuConfig::default()), "digest is deterministic");
        assert_ne!(a, config_digest(&CpuConfig::no_runahead()));
        assert_ne!(a, config_digest(&CpuConfig::secure_runahead()));
    }

    #[test]
    fn a_panicking_scenario_becomes_a_failed_run() {
        fn explode(_: &RunContext) -> ScenarioRun {
            panic!("cycle budget exceeded: deep inside a sweep");
        }
        let s = Scenario { name: "boom", title: "t", paper_ref: "r", run: explode };
        let run = s.try_execute(&RunContext::quick());
        assert!(!run.passed(), "a run with an error never passes");
        assert_eq!(run.error.as_deref(), Some("cycle budget exceeded: deep inside a sweep"));
        let json = run.to_json().render();
        assert!(json.contains("\"passed\": false"));
        assert!(json.contains("\"error\": \"cycle budget exceeded: deep inside a sweep\""));
    }

    #[test]
    fn a_clean_scenario_records_no_error() {
        let run = dummy(&RunContext::quick());
        assert_eq!(run.error, None);
        assert!(run.to_json().render().contains("\"error\": null"));
    }

    #[test]
    fn sized_picks_by_mode() {
        assert_eq!(RunContext::full().sized(100, 10), 100);
        assert_eq!(RunContext::quick().sized(100, 10), 10);
    }
}
