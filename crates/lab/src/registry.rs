//! The scenario registry: every paper artifact as a [`Scenario`] value.
//!
//! Adding a new experiment means adding one entry here — a run function
//! that produces metrics (through the [`MetricSource`] extraction traits),
//! config digests and paper-claim invariants — not a new binary. The
//! legacy binaries (`fig7`, `table1`, …) are thin aliases over this table.

use specrun::attack::{
    run_btb_poc, run_pht_poc, run_pht_sweep, run_rsb_poc, PocConfig, PocOutcome, SweepConfig,
};
use specrun::defense::verify_pht_blocked;
use specrun::session::{leak_trace_for, Policy, Session};
use specrun::window::measure_windows;
use specrun_cpu::probe::CountingObserver;
use specrun_cpu::{CpuConfig, RunaheadPolicy};
use specrun_workloads::ipc::{run_workload, IpcComparison};
use specrun_workloads::metrics::MetricSource;
use specrun_workloads::{geomean_speedup, parallel_map, suite_with_iters};

use crate::scenario::{RunContext, Scenario, ScenarioRun};

/// Every registered scenario, in the paper's order.
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "table1",
            title: "Basic configuration of the processor",
            paper_ref: "Table 1",
            run: run_table1,
        },
        Scenario {
            name: "fig7",
            title: "Standardized performance (IPC) comparison",
            paper_ref: "Fig. 7",
            run: run_fig7,
        },
        Scenario {
            name: "fig9",
            title: "Probe-array access time after executing SPECRUN",
            paper_ref: "Fig. 9",
            run: run_fig9,
        },
        Scenario {
            name: "fig10",
            title: "Available transient window",
            paper_ref: "Fig. 10 / §5.3",
            run: run_fig10,
        },
        Scenario {
            name: "fig11",
            title: "Probe access time with the secret pushed beyond the ROB",
            paper_ref: "Fig. 11",
            run: run_fig11,
        },
        Scenario {
            name: "variants",
            title: "Attack applicability across policies and Spectre variants",
            paper_ref: "§4.3 / §4.4",
            run: run_variants,
        },
        Scenario {
            name: "defense",
            title: "Secure-runahead defense effectiveness and overhead",
            paper_ref: "§6",
            run: run_defense,
        },
        Scenario {
            name: "leak_trace",
            title: "Ground-truth transient-fill trace vs probe-timing inference",
            paper_ref: "§5 methodology",
            run: run_leak_trace,
        },
        Scenario {
            name: "trace_repro",
            title: "Record/replay losslessness and first-divergence forensics",
            paper_ref: "§5 methodology",
            run: run_trace_repro,
        },
        Scenario {
            name: "bench_step",
            title: "Simulator self-check: fast-forward invisibility and sweep accuracy",
            paper_ref: "methodology",
            run: run_bench_step,
        },
        Scenario {
            name: "pool_matrix",
            title: "Copy-on-write fork campaign across the attack/defense matrix",
            paper_ref: "§4.3/§4.4/§6",
            run: run_pool_matrix,
        },
    ]
}

/// Looks a scenario up by registry name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

fn scenario(name: &str) -> Scenario {
    find(name).expect("registry names its own scenarios")
}

/// Resolves `ctx.threads` for a `parallel_map` fan-out (`0` = all host
/// cores); `parallel_map` itself clamps to the job count.
fn worker_threads(ctx: &RunContext) -> usize {
    if ctx.threads == 0 {
        specrun_workloads::harness::default_threads()
    } else {
        ctx.threads
    }
}

// ---------------------------------------------------------------------------
// Table 1 — the machine configuration.
// ---------------------------------------------------------------------------

fn run_table1(ctx: &RunContext) -> ScenarioRun {
    let mut run = ScenarioRun::new(&scenario("table1"), ctx);
    let c = CpuConfig::default();
    run.digest("default", &c);

    run.metrics.push("freq_ghz", c.freq_ghz);
    run.metrics.push("width", c.width as f64);
    run.metrics.push("frontend_stages", c.frontend_stages as f64);
    run.metrics.push("rob_entries", c.rob_entries as f64);
    run.metrics.push("iq_entries", c.iq_entries as f64);
    run.metrics.push("lq_entries", c.lq_entries as f64);
    run.metrics.push("sq_entries", c.sq_entries as f64);
    run.metrics.push("int_prf", c.int_prf as f64);
    run.metrics.push("fp_prf", c.fp_prf as f64);
    for (name, cc) in
        [("l1i", &c.mem.l1i), ("l1d", &c.mem.l1d), ("l2", &c.mem.l2), ("l3", &c.mem.l3)]
    {
        run.metrics.push(format!("{name}_kb"), cc.size_bytes as f64 / 1024.0);
        run.metrics.push(format!("{name}_ways"), cc.ways as f64);
        run.metrics.push(format!("{name}_hit_latency"), cc.hit_latency as f64);
    }
    run.metrics.push("dram_latency", c.mem.dram.latency as f64);

    let core_ok = c.freq_ghz == 2.0 && c.width == 4 && c.frontend_stages == 6;
    run.check(
        "core_matches_table1",
        "2 GHz out-of-order core, 4-wide, 6 front-end stages",
        core_ok,
        format!("{} GHz, {}-wide, {} stages", c.freq_ghz, c.width, c.frontend_stages),
    );
    let windows_ok = c.rob_entries == 256
        && c.iq_entries == 40
        && c.lq_entries == 40
        && c.sq_entries == 40
        && c.int_prf == 80
        && c.fp_prf == 40;
    run.check(
        "windows_match_table1",
        "256-entry ROB; 40-entry issue/load/store queues; 80 int / 40 fp registers",
        windows_ok,
        format!(
            "rob {}, iq {}, lq {}, sq {}, prf {}/{}",
            c.rob_entries, c.iq_entries, c.lq_entries, c.sq_entries, c.int_prf, c.fp_prf
        ),
    );
    let caches_ok = c.mem.l1i.size_bytes == 16 * 1024
        && c.mem.l1d.size_bytes == 16 * 1024
        && c.mem.l2.size_bytes == 128 * 1024
        && c.mem.l3.size_bytes == 4 * 1024 * 1024
        && c.mem.dram.latency == 200;
    run.check(
        "memory_matches_table1",
        "16KB L1I/L1D, 128KB L2, 4MB L3, 200-cycle memory",
        caches_ok,
        format!(
            "l1i {}KB, l1d {}KB, l2 {}KB, l3 {}MB, dram {}",
            c.mem.l1i.size_bytes / 1024,
            c.mem.l1d.size_bytes / 1024,
            c.mem.l2.size_bytes / 1024,
            c.mem.l3.size_bytes / (1024 * 1024),
            c.mem.dram.latency
        ),
    );

    run.line("Table 1: The basic configuration of the processor".to_string());
    run.line(format!("{:-<66}", ""));
    run.line(format!("{:<18} Parameter", "Component"));
    run.line(format!("{:-<66}", ""));
    run.line(format!("{:<18} {} GHz, out-of-order", "Core", c.freq_ghz));
    run.line(format!("{:<18} {}-wide fetch/decode/dispatch/commit", "Processor width", c.width));
    run.line(format!("{:<18} {} front-end stages", "Pipeline depth", c.frontend_stages));
    run.line(format!("{:<18} two-level adaptive predictor", "Branch predictor"));
    run.line(format!(
        "{:<18} {} int add ({} cycle), {} int mult ({} cycle),",
        "Functional units",
        c.fu.int_add.count,
        c.fu.int_add.latency,
        c.fu.int_mul.count,
        c.fu.int_mul.latency
    ));
    run.line(format!(
        "{:<18} {} int div ({} cycle), {} fp add ({} cycle),",
        "", c.fu.int_div.count, c.fu.int_div.latency, c.fu.fp_add.count, c.fu.fp_add.latency
    ));
    run.line(format!(
        "{:<18} {} fp mult ({} cycle), {} fp div ({} cycle)",
        "", c.fu.fp_mul.count, c.fu.fp_mul.latency, c.fu.fp_div.count, c.fu.fp_div.latency
    ));
    run.line(format!(
        "{:<18} {} int (64 bit), {} fp (64 bit)",
        "Register file", c.int_prf, c.fp_prf
    ));
    run.line(format!("{:<18} {} entries", "ROB", c.rob_entries));
    run.line(format!(
        "{:<18} i ({}), load ({}), store ({})",
        "Queue", c.iq_entries, c.lq_entries, c.sq_entries
    ));
    let cache = |cc: &specrun_mem::CacheConfig| {
        format!("{}KB, {} way, {} cycle", cc.size_bytes / 1024, cc.ways, cc.hit_latency)
    };
    run.line(format!("{:<18} {}", "L1 I-cache", cache(&c.mem.l1i)));
    run.line(format!("{:<18} {}", "L1 D-cache", cache(&c.mem.l1d)));
    run.line(format!("{:<18} {}", "L2 cache", cache(&c.mem.l2)));
    run.line(format!(
        "{:<18} {}MB, {} way, {} cycle",
        "L3 cache",
        c.mem.l3.size_bytes / (1024 * 1024),
        c.mem.l3.ways,
        c.mem.l3.hit_latency
    ));
    run.line(format!(
        "{:<18} request-based contention model, {} cycle",
        "Memory", c.mem.dram.latency
    ));
    run
}

// ---------------------------------------------------------------------------
// Fig. 7 — runahead IPC on the kernel suite.
// ---------------------------------------------------------------------------

fn run_fig7(ctx: &RunContext) -> ScenarioRun {
    let mut run = ScenarioRun::new(&scenario("fig7"), ctx);
    let iters = ctx.sized(specrun_workloads::DEFAULT_ITERS, 400);
    run.note("iters", iters.to_string());
    run.digest("no_runahead", &CpuConfig::no_runahead());
    run.digest("runahead", &CpuConfig::default());

    let suite = suite_with_iters(iters);
    let results = specrun_workloads::ipc::compare_parallel(&suite, 50_000_000, ctx.threads);

    run.line("kernel,no_runahead,runahead,speedup,runahead_entries".to_string());
    let mut all_improve = true;
    for c in &results {
        let (base_norm, ra_norm) = c.normalized_ipc();
        run.line(format!(
            "{},{:.3},{:.3},{:.3},{}",
            c.name,
            base_norm,
            ra_norm,
            c.speedup(),
            c.runahead.runahead_entries
        ));
        c.emit_metrics(c.name, &mut run.metrics);
        all_improve &= c.speedup() > 0.99;
    }
    let mean = geomean_speedup(&results);
    run.metrics.push("geomean_speedup", mean);
    run.line(format!("geomean,1.000,{mean:.3},{mean:.3},-"));

    run.check(
        "every_kernel_improves",
        "runahead does not regress any Fig. 7 kernel (speedup > 0.99)",
        all_improve,
        results
            .iter()
            .map(|c| format!("{} {:.3}", c.name, c.speedup()))
            .collect::<Vec<_>>()
            .join(", "),
    );
    let mcf = results.iter().find(|c| c.name == "mcf").expect("suite contains mcf");
    run.check(
        "mcf_runahead_speedup",
        "runahead speedup > 1 on mcf (the paper's pointer-chase headliner)",
        mcf.speedup() > 1.0,
        format!("{:.3}", mcf.speedup()),
    );
    run.check(
        "geomean_near_paper",
        "geomean speedup lands near the paper's +11% (within 1.02..1.35)",
        (1.02..1.35).contains(&mean),
        format!("{mean:.3}"),
    );
    let triggered = results.iter().all(|c| c.runahead.runahead_entries > 0);
    run.check(
        "runahead_triggers_everywhere",
        "every kernel enters at least one runahead episode",
        triggered,
        results
            .iter()
            .map(|c| format!("{} {}", c.name, c.runahead.runahead_entries))
            .collect::<Vec<_>>()
            .join(", "),
    );
    run
}

// ---------------------------------------------------------------------------
// Fig. 9 — the PoC leak.
// ---------------------------------------------------------------------------

fn emit_poc_lines(run: &mut ScenarioRun, outcome: &PocOutcome, threshold: u64) {
    run.line(format!(
        "leaked={:?} expected={} runahead_entries={} unresolved_inv_branches={}",
        outcome.leaked, outcome.expected, outcome.runahead_entries, outcome.inv_branches
    ));
    run.line(format!(
        "dip at index {:?} ({} cycles vs miss floor {:.0})",
        outcome.leaked,
        outcome.leaked.map(|i| outcome.timings.as_slice()[i as usize]).unwrap_or(0),
        outcome.timings.miss_floor(threshold)
    ));
}

fn run_fig9(ctx: &RunContext) -> ScenarioRun {
    let mut run = ScenarioRun::new(&scenario("fig9"), ctx);
    let cfg = PocConfig::default(); // secret 86, as in the paper
    run.note("secret", cfg.secret.to_string());
    run.digest("runahead", &CpuConfig::default());

    let mut session = Session::builder().policy(Policy::Runahead).build();
    let outcome = run_pht_poc(&mut session, &cfg);

    outcome.emit_metrics("poc", &mut run.metrics);
    let timings = outcome.timings.as_slice();
    run.metrics.push("probe_entries", timings.len() as f64);
    run.metrics.push("miss_floor", outcome.timings.miss_floor(cfg.threshold));
    if let Some(i) = outcome.leaked {
        run.metrics.push("dip_cycles", timings[i as usize] as f64);
    }

    run.check(
        "poc_leaks_secret",
        "SPECRUN leaks the planted secret (86) on the runahead machine",
        outcome.leaked == Some(86),
        format!("{:?}", outcome.leaked),
    );
    run.check(
        "runahead_triggered",
        "the attack drives the pipeline into runahead",
        outcome.runahead_entries > 0,
        outcome.runahead_entries,
    );
    run.check(
        "inv_branch_signature",
        "at least one INV-source branch never resolves (the SPECRUN signature)",
        outcome.inv_branches > 0,
        outcome.inv_branches,
    );
    // The figure's actual data series: probe access time per index.
    run.line("index,cycles".to_string());
    for (i, &t) in timings.iter().enumerate() {
        run.line(format!("{i},{t}"));
    }
    emit_poc_lines(&mut run, &outcome, cfg.threshold);
    run
}

// ---------------------------------------------------------------------------
// Fig. 10 / §5.3 — transient windows.
// ---------------------------------------------------------------------------

fn run_fig10(ctx: &RunContext) -> ScenarioRun {
    let mut run = ScenarioRun::new(&scenario("fig10"), ctx);
    run.digest("runahead", &CpuConfig::default());
    run.digest("no_runahead", &CpuConfig::no_runahead());

    let r = measure_windows();
    r.emit_metrics("", &mut run.metrics);

    run.line(format!("Fig. 10 / §5.3: available transient window (ROB = {})", r.rob_entries));
    run.line("scenario,measured,paper".to_string());
    run.line(format!("N1 normal flush-once,{},255", r.n1));
    run.line(format!("N2 runahead flush-once,{},480", r.n2));
    run.line(format!("N3 runahead repeated-flush,{},840", r.n3));
    run.line(format!("episodes in scenario 3: {}", r.episodes_n3));

    run.check(
        "n1_is_rob_minus_one",
        "the normal machine's window is bounded by the ROB (N1 = 255)",
        r.n1 == 255,
        r.n1,
    );
    run.check(
        "n2_exceeds_rob",
        "one runahead episode pushes the window past the ROB (N2 > 256)",
        r.n2 > r.rob_entries,
        r.n2,
    );
    run.check(
        "n3_exceeds_n2",
        "repeated flushes chain episodes and extend the window further (N3 > N2)",
        r.n3 > r.n2,
        format!("N3 {} vs N2 {}", r.n3, r.n2),
    );
    run.check(
        "episodes_chain",
        "scenario ➂ observes at least two runahead episodes",
        r.episodes_n3 >= 2,
        r.episodes_n3,
    );
    run
}

// ---------------------------------------------------------------------------
// Fig. 11 — beyond the ROB only the runahead machine leaks.
// ---------------------------------------------------------------------------

/// The Fig. 11 nop slide: longer than the 256-entry ROB. Shared with the
/// trace subsystem, which records the same fixed-geometry PoC so a replay
/// can rebuild its observers without metadata in the log.
pub(crate) const FIG11_SLIDE: usize = 300;

fn run_fig11(ctx: &RunContext) -> ScenarioRun {
    let mut run = ScenarioRun::new(&scenario("fig11"), ctx);
    run.note("nop_slide", FIG11_SLIDE.to_string());
    run.digest("no_runahead", &CpuConfig::no_runahead());
    run.digest("runahead", &CpuConfig::default());

    let policies = [Policy::NoRunahead, Policy::Runahead];
    let outcomes = parallel_map(&policies, worker_threads(ctx), |_, &policy| {
        let mut session = Session::builder().policy(policy).build();
        run_pht_poc(&mut session, &PocConfig::fig11(FIG11_SLIDE))
    });
    let (base, attacked) = (&outcomes[0], &outcomes[1]);
    base.emit_metrics("no_runahead", &mut run.metrics);
    attacked.emit_metrics("runahead", &mut run.metrics);

    run.line("index,no_runahead_cycles,runahead_cycles".to_string());
    let b = base.timings.as_slice();
    let r = attacked.timings.as_slice();
    for i in 0..b.len() {
        run.line(format!("{i},{},{}", b[i], r[i]));
    }
    run.line(format!(
        "no-runahead leaked: {:?} (paper: none); runahead leaked: {:?} (paper: 127)",
        base.leaked, attacked.leaked
    ));

    run.check(
        "baseline_does_not_leak",
        "with the secret beyond the ROB, the no-runahead machine leaks nothing",
        base.leaked.is_none(),
        format!("{:?}", base.leaked),
    );
    run.check(
        "runahead_leaks_beyond_rob",
        "the runahead machine leaks the secret (127) from beyond the ROB window",
        attacked.leaked == Some(127),
        format!("{:?}", attacked.leaked),
    );
    run
}

// ---------------------------------------------------------------------------
// §4.3/§4.4 — policies × Spectre variants.
// ---------------------------------------------------------------------------

fn run_variants(ctx: &RunContext) -> ScenarioRun {
    let mut run = ScenarioRun::new(&scenario("variants"), ctx);
    run.note("nop_slide", FIG11_SLIDE.to_string());

    enum Job {
        Policy(RunaheadPolicy),
        Variant(&'static str),
    }
    let jobs = [
        Job::Policy(RunaheadPolicy::Original),
        Job::Policy(RunaheadPolicy::Precise),
        Job::Policy(RunaheadPolicy::Vector),
        Job::Variant("pht"),
        Job::Variant("btb"),
        Job::Variant("rsb"),
    ];
    for policy in [RunaheadPolicy::Original, RunaheadPolicy::Precise, RunaheadPolicy::Vector] {
        let mut cfg = CpuConfig::default();
        cfg.runahead.policy = policy;
        run.digest(format!("{policy:?}"), &cfg);
    }
    let outcomes = parallel_map(&jobs, worker_threads(ctx), |_, job| match job {
        Job::Policy(policy) => {
            let mut session = Session::builder().policy(Policy::Variant(*policy)).build();
            run_pht_poc(&mut session, &PocConfig::fig11(FIG11_SLIDE))
        }
        Job::Variant(name) => {
            let cfg = PocConfig { nop_slide: FIG11_SLIDE, ..PocConfig::default() };
            let mut session = Session::builder().policy(Policy::Runahead).build();
            match *name {
                "pht" => run_pht_poc(&mut session, &cfg),
                "btb" => run_btb_poc(&mut session, &cfg),
                "rsb" => run_rsb_poc(&mut session, &cfg),
                other => unreachable!("unknown variant {other}"),
            }
        }
    });

    run.line("== SpectrePHT against runahead policies (nop slide 300) ==".to_string());
    run.line("policy,leaked,expected,runahead_entries,inv_branches".to_string());
    for (job, o) in jobs.iter().zip(&outcomes).take(3) {
        let Job::Policy(policy) = job else { unreachable!() };
        let label = format!("policy_{policy:?}").to_lowercase();
        o.emit_metrics(&label, &mut run.metrics);
        run.line(format!(
            "{label},{:?},{},{},{}",
            o.leaked, o.expected, o.runahead_entries, o.inv_branches
        ));
    }
    run.line(String::new());
    run.line("== Spectre variants nested in (original) runahead ==".to_string());
    run.line("variant,leaked,expected,runahead_entries".to_string());
    for (job, o) in jobs.iter().zip(&outcomes).skip(3) {
        let Job::Variant(name) = job else { unreachable!() };
        let label = format!("variant_{name}");
        o.emit_metrics(&label, &mut run.metrics);
        run.line(format!("{label},{:?},{},{}", o.leaked, o.expected, o.runahead_entries));
    }
    let observed = jobs
        .iter()
        .zip(&outcomes)
        .map(|(job, o)| {
            let label = match job {
                Job::Policy(policy) => format!("{policy:?}"),
                Job::Variant(name) => name.to_string(),
            };
            format!("{label}:{:?}", o.leaked)
        })
        .collect::<Vec<_>>()
        .join(", ");
    run.check(
        "all_policies_leak",
        "SPECRUN succeeds against the original, precise and vector runahead policies",
        outcomes[..3].iter().all(PocOutcome::success),
        observed.clone(),
    );
    run.check(
        "all_variants_leak",
        "SpectrePHT/BTB/RSB all leak when nested inside runahead",
        outcomes[3..].iter().all(PocOutcome::success),
        observed,
    );
    run
}

// ---------------------------------------------------------------------------
// §6 — the defense evaluation.
// ---------------------------------------------------------------------------

fn run_defense(ctx: &RunContext) -> ScenarioRun {
    let mut run = ScenarioRun::new(&scenario("defense"), ctx);
    run.note("nop_slide", FIG11_SLIDE.to_string());

    // Effectiveness: the Fig. 11 attack against the defended machines.
    let machines = [
        ("undefended", Policy::Runahead),
        ("secure_sl_cache", Policy::Secure),
        ("skip_inv_branch", Policy::SkipInv),
    ];
    let reports = parallel_map(&machines, worker_threads(ctx), |_, (_, policy)| {
        let mut session = Session::builder().policy(*policy).build();
        verify_pht_blocked(&mut session, &PocConfig::fig11(FIG11_SLIDE))
    });
    run.line("machine,leaked,blocked,sl_promotions,sl_deletions,skipped_inv".to_string());
    for ((name, _), report) in machines.iter().zip(&reports) {
        report.emit_metrics(name, &mut run.metrics);
        run.line(format!(
            "{name},{:?},{},{},{},{}",
            report.outcome.leaked,
            report.blocked(),
            report.sl_promotions,
            report.sl_deletions,
            report.skipped_inv_branches
        ));
    }
    run.check(
        "undefended_leaks",
        "the undefended runahead machine leaks (the attack the defense must stop)",
        reports[0].outcome.success(),
        format!("{:?}", reports[0].outcome.leaked),
    );
    run.check(
        "secure_runahead_blocks",
        "secure runahead leakage = 0: the SL-cache defense blocks the leak",
        reports[1].blocked(),
        format!("{:?}", reports[1].outcome.leaked),
    );
    run.check(
        "skip_inv_blocks",
        "the skip-INV-branch mitigation blocks the leak",
        reports[2].blocked(),
        format!("{:?}", reports[2].outcome.leaked),
    );

    // Overhead: the Fig. 7 kernels across four machine configurations.
    let iters = ctx.sized(600, 200);
    run.note("overhead_iters", iters.to_string());
    let suite = suite_with_iters(iters);
    let mut skip_cfg = CpuConfig::default();
    skip_cfg.runahead.secure = specrun_cpu::SecureConfig::skip_inv_default();
    let configs =
        [CpuConfig::no_runahead(), CpuConfig::default(), CpuConfig::secure_runahead(), skip_cfg];
    for (label, cfg) in ["no_runahead", "runahead", "secure", "skip_inv"].iter().zip(&configs) {
        run.digest(*label, cfg);
    }
    let jobs: Vec<(usize, usize)> =
        (0..suite.len()).flat_map(|w| (0..configs.len()).map(move |c| (w, c))).collect();
    let results = parallel_map(&jobs, worker_threads(ctx), |_, &(w, c)| {
        run_workload(&suite[w], configs[c].clone(), 50_000_000)
    });
    let compared = |w: usize, c: usize| IpcComparison {
        name: suite[w].name,
        baseline: results[w * configs.len()],
        runahead: results[w * configs.len() + c],
    };
    run.line(
        "kernel,runahead,secure_runahead,skip_inv,secure_overhead_vs_runahead_pct".to_string(),
    );
    let (mut plain, mut secure, mut skip) = (Vec::new(), Vec::new(), Vec::new());
    for (w, workload) in suite.iter().enumerate() {
        let p = compared(w, 1);
        let s = compared(w, 2);
        let k = compared(w, 3);
        let overhead = (1.0 - s.runahead.ipc / p.runahead.ipc) * 100.0;
        run.line(format!(
            "{},{:.3},{:.3},{:.3},{:.1}%",
            workload.name,
            p.speedup(),
            s.speedup(),
            k.speedup(),
            overhead
        ));
        run.metrics.push(format!("{}_runahead_speedup", workload.name), p.speedup());
        run.metrics.push(format!("{}_secure_speedup", workload.name), s.speedup());
        run.metrics.push(format!("{}_skip_inv_speedup", workload.name), k.speedup());
        run.metrics.push(format!("{}_secure_overhead_pct", workload.name), overhead);
        plain.push(p);
        secure.push(s);
        skip.push(k);
    }
    let (gp, gs, gk) = (geomean_speedup(&plain), geomean_speedup(&secure), geomean_speedup(&skip));
    let overhead_pct = (1.0 - gs / gp) * 100.0;
    run.metrics.push("geomean_runahead_speedup", gp);
    run.metrics.push("geomean_secure_speedup", gs);
    run.metrics.push("geomean_skip_inv_speedup", gk);
    run.metrics.push("geomean_secure_overhead_pct", overhead_pct);
    run.line(format!("geomean,{gp:.3},{gs:.3},{gk:.3},{overhead_pct:.1}%"));

    run.check(
        "secure_overhead_small",
        "the SL-cache defense costs little performance (geomean overhead < 5%)",
        overhead_pct < 5.0,
        format!("{overhead_pct:.2}%"),
    );
    run.check(
        "secure_keeps_runahead_win",
        "secure runahead still beats the no-runahead baseline (geomean speedup > 1)",
        gs > 1.0,
        format!("{gs:.3}"),
    );
    run
}

// ---------------------------------------------------------------------------
// leak_trace — ground-truth leakage tracing. A LeakTraceObserver watches
// the pipeline's own TransientLoad/CacheFill events (the SPECULOSE
// methodology: observe the transient accesses, don't just time their side
// effects), cross-checks the direct observation against the probe-timing
// inference, and carries the "secure runahead transient secret fills = 0"
// invariant — a scenario class the timing-only API could not express.
// ---------------------------------------------------------------------------

fn run_leak_trace(ctx: &RunContext) -> ScenarioRun {
    let mut run = ScenarioRun::new(&scenario("leak_trace"), ctx);
    // The Fig. 11 shape (slide > ROB): with the gadget beyond the reorder
    // window, ordinary speculation cannot reach it, so *every* probe-line
    // fill is a runahead-transient fill and the ground-truth observer sees
    // the whole channel. (With a short slide the first transmit happens
    // under plain speculation — architecturally-attributed fills — and the
    // trace would rightly blame Spectre, not SPECRUN.)
    let cfg = PocConfig::fig11(FIG11_SLIDE); // secret 127
    run.note("secret", cfg.secret.to_string());
    run.note("nop_slide", FIG11_SLIDE.to_string());
    run.note("scale", "fixed (one PoC run per machine; quick = full)");
    run.digest("runahead", &CpuConfig::default());
    run.digest("secure", &CpuConfig::secure_runahead());

    let jobs = [("runahead", Policy::Runahead), ("secure_sl_cache", Policy::Secure)];
    let results = parallel_map(&jobs, worker_threads(ctx), |_, (_, policy)| {
        let tracer = leak_trace_for(&cfg.layout, &CpuConfig::default());
        let mut session = Session::builder()
            .policy(*policy)
            .observer((CountingObserver::default(), tracer))
            .build();
        let outcome = run_pht_poc(&mut session, &cfg);
        let stats = *session.stats();
        let (counts, trace) = session.observer().clone();
        (outcome, stats, counts, trace)
    });

    run.line("machine,timing_leaked,ground_truth,transient_secret_fills,secret_reads".to_string());
    for ((name, _), (outcome, _stats, counts, trace)) in jobs.iter().zip(&results) {
        outcome.emit_metrics(name, &mut run.metrics);
        run.metrics
            .push(format!("{name}_transient_secret_fills"), trace.transient_secret_fills() as f64);
        run.metrics.push(format!("{name}_secret_reads"), trace.secret_reads() as f64);
        run.metrics.push(format!("{name}_transient_loads"), trace.transient_loads() as f64);
        run.metrics.push(format!("{name}_squash_events"), counts.squash_events as f64);
        run.metrics.push(format!("{name}_observer_commits"), counts.commits as f64);
        run.metrics.push(format!("{name}_observer_squashed"), counts.squashed_total as f64);
        run.line(format!(
            "{name},{:?},{:?},{},{}",
            outcome.leaked,
            trace.ground_truth_byte(&[0]),
            trace.transient_secret_fills(),
            trace.secret_reads()
        ));
    }

    let (attacked, attacked_stats, attacked_counts, attacked_trace) = &results[0];
    let (secured, _, _, secured_trace) = &results[1];

    // The inference and the ground truth must name the same probe indices
    // (probe entry 0 is excluded on both sides: training touches it
    // architecturally).
    let timing_hot: Vec<usize> =
        attacked.timings.hot_indices(cfg.threshold).into_iter().filter(|&i| i != 0).collect();
    let truth_hot = attacked_trace.hot_indices(&[0]);
    run.check(
        "ground_truth_matches_timing",
        "the probe indices the observer saw transiently filled are exactly the ones \
         the timing inference flags hot",
        timing_hot == truth_hot,
        format!("timing {timing_hot:?} vs ground truth {truth_hot:?}"),
    );
    run.check(
        "ground_truth_recovers_secret",
        format!(
            "the observer's directly-counted transient fill names the planted secret ({})",
            cfg.secret
        ),
        attacked_trace.ground_truth_byte(&[0]) == Some(cfg.secret)
            && attacked.leaked == Some(cfg.secret),
        format!(
            "ground truth {:?}, timing {:?}",
            attacked_trace.ground_truth_byte(&[0]),
            attacked.leaked
        ),
    );
    run.check(
        "secret_read_transiently",
        "the runahead machine reads the secret line during runahead (the access that \
         architecturally never happens)",
        attacked_trace.secret_reads() > 0,
        attacked_trace.secret_reads(),
    );
    run.check(
        "secure_runahead_zero_transient_secret_fills",
        "secure runahead transient secret fills = 0: the SL-cache defense leaves no \
         transient fill in any probe line",
        secured_trace.transient_secret_fills() == 0,
        secured_trace.transient_secret_fills(),
    );
    run.check(
        "secure_timing_agrees",
        "the timing inference agrees with the ground truth that the defended machine \
         leaks nothing",
        secured.leaked.is_none(),
        format!("{:?}", secured.leaked),
    );
    run.check(
        "observer_reconciles_with_stats",
        "observer event totals reconcile with CpuStats (runahead enters, squashed sum, \
         commits)",
        attacked_counts.runahead_enters == attacked_stats.runahead_entries
            && attacked_counts.squashed_total == attacked_stats.squashed
            && attacked_counts.commits == attacked_stats.committed,
        format!(
            "enters {}/{}, squashed {}/{}, commits {}/{}",
            attacked_counts.runahead_enters,
            attacked_stats.runahead_entries,
            attacked_counts.squashed_total,
            attacked_stats.squashed,
            attacked_counts.commits,
            attacked_stats.committed
        ),
    );
    run
}

// ---------------------------------------------------------------------------
// trace_repro — the trace subsystem's paper-facing self-check. A recording
// observer rides the leak_trace PoC on both the attacked and the defended
// machine; the binary log must round-trip losslessly, a detached replay
// must reconcile bit-identically with the live observers (the property
// that makes offline forensics trustworthy), and the first-divergence
// aligner must name the exact suppressed transient secret fill.
// ---------------------------------------------------------------------------

fn run_trace_repro(ctx: &RunContext) -> ScenarioRun {
    use specrun_trace::{decode_events, encode_events, first_divergence, RecordingObserver};

    let mut run = ScenarioRun::new(&scenario("trace_repro"), ctx);
    let cfg = PocConfig::fig11(FIG11_SLIDE); // secret 127, slide > ROB
    run.note("secret", cfg.secret.to_string());
    run.note("nop_slide", FIG11_SLIDE.to_string());
    run.note("scale", "fixed (one PoC run per machine; quick = full)");
    run.digest("runahead", &CpuConfig::default());
    run.digest("secure", &CpuConfig::secure_runahead());

    let jobs = [("runahead", Policy::Runahead), ("secure_sl_cache", Policy::Secure)];
    let results = parallel_map(&jobs, worker_threads(ctx), |_, (_, policy)| {
        let tracer = leak_trace_for(&cfg.layout, &CpuConfig::default());
        let mut session = Session::builder()
            .policy(*policy)
            .observer(((CountingObserver::default(), tracer), RecordingObserver::new()))
            .build();
        let outcome = run_pht_poc(&mut session, &cfg);
        let ((counts, trace), recorder) = session.observer().clone();
        (outcome, counts, trace, recorder.into_events())
    });

    run.line("machine,events,trace_bytes,lossless,replay_identical".to_string());
    let mut replays = Vec::new();
    for ((name, _), (_, counts, tracer, events)) in jobs.iter().zip(&results) {
        let bytes = encode_events(events);
        let decoded = decode_events(&bytes).expect("a freshly encoded log decodes");
        let lossless = decoded.events == *events && !decoded.torn_tail;
        let mut fresh =
            (CountingObserver::default(), leak_trace_for(&cfg.layout, &CpuConfig::default()));
        specrun_trace::replay(&decoded.events, &mut fresh);
        let identical = fresh.0 == *counts && fresh.1 == *tracer;
        run.metrics.push(format!("{name}_events"), events.len() as f64);
        run.metrics.push(format!("{name}_trace_bytes"), bytes.len() as f64);
        run.metrics.push(format!("{name}_replay_commits"), fresh.0.commits as f64);
        run.metrics.push(
            format!("{name}_replay_transient_secret_fills"),
            fresh.1.transient_secret_fills() as f64,
        );
        run.line(format!("{name},{},{},{lossless},{identical}", events.len(), bytes.len()));
        replays.push((lossless, identical, fresh.1));
    }

    run.check(
        "round_trip_lossless",
        "encode → decode reproduces both machines' event streams exactly, with no torn tail",
        replays.iter().all(|(lossless, _, _)| *lossless),
        format!("{:?}", replays.iter().map(|(l, _, _)| *l).collect::<Vec<_>>()),
    );
    run.check(
        "replay_reconciles_bit_identically",
        "re-driving fresh observers from the log alone reproduces the live CountingObserver \
         and LeakTraceObserver bit for bit, on both machines",
        replays.iter().all(|(_, identical, _)| *identical),
        format!("{:?}", replays.iter().map(|(_, i, _)| *i).collect::<Vec<_>>()),
    );
    let replayed_attacked = &replays[0].2;
    run.check(
        "replayed_trace_recovers_secret",
        format!(
            "the replayed attacked-machine trace recovers the planted secret ({}) with the \
             same per-probe fill counts as the live observer",
            cfg.secret
        ),
        replayed_attacked.ground_truth_byte(&[0]) == Some(cfg.secret)
            && replayed_attacked.fills_per_entry() == results[0].2.fills_per_entry(),
        format!("{:?}", replayed_attacked.ground_truth_byte(&[0])),
    );
    run.check(
        "replayed_secure_trace_shows_no_fills",
        "the replayed defended-machine trace has zero transient secret fills",
        replays[1].2.transient_secret_fills() == 0,
        replays[1].2.transient_secret_fills(),
    );

    // The forensic verdict: diffing the two machines' traces must name the
    // suppressed transient fill of the secret's probe line — not the
    // timing skew the SL cache also causes.
    let secret_line = (cfg.layout.probe_base + u64::from(cfg.secret) * cfg.layout.probe_stride)
        / CpuConfig::default().mem.l1d.line_bytes;
    let divergence = first_divergence(&results[0].3, &results[1].3);
    let pinpoints = matches!(
        divergence.as_ref().map(|d| d.a),
        Some(Some(specrun_trace::PipelineEvent::CacheFill { line, transient: true, .. }))
            if line == secret_line
    );
    if let Some(d) = &divergence {
        run.metrics.push("divergence_index", d.index as f64);
        run.metrics.push("divergence_commit_anchor", d.commit_anchor as f64);
        run.metrics.push("divergence_runahead_episode", d.runahead_episode as f64);
        run.line(d.describe());
    }
    run.check(
        "divergence_pinpoints_secret_fill",
        format!(
            "the first divergence between the attacked and defended traces is the transient \
             fill of the secret's probe line ({secret_line:#x})"
        ),
        pinpoints,
        divergence.map_or("<no divergence>".to_string(), |d| d.describe()),
    );
    run
}

// ---------------------------------------------------------------------------
// bench_step — the deterministic simulator self-check behind the perf
// anchor. Wall-clock rates live in `specrun-lab perf`; this scenario holds
// the reproducible part: cycle counts, fast-forward invisibility and sweep
// accuracy.
// ---------------------------------------------------------------------------

fn run_bench_step(ctx: &RunContext) -> ScenarioRun {
    use specrun_workloads::ipc::run_workload as run_w;
    use specrun_workloads::kernels;

    let mut run = ScenarioRun::new(&scenario("bench_step"), ctx);
    let iters = ctx.sized(1200, 240);
    run.note("iters", iters.to_string());
    run.digest("no_runahead", &CpuConfig::no_runahead());
    run.digest("runahead", &CpuConfig::default());

    let chase = kernels::pointer_chase(iters);
    let mcf = kernels::mcf(iters / 2);
    run.line("kernel,machine,cycles,committed,ff_invisible".to_string());
    let mut all_invisible = true;
    for (label, w, cfg) in [
        ("pointer_chase_no_runahead", &chase, CpuConfig::no_runahead()),
        ("pointer_chase_runahead", &chase, CpuConfig::default()),
        ("mcf_no_runahead", &mcf, CpuConfig::no_runahead()),
        ("mcf_runahead", &mcf, CpuConfig::default()),
    ] {
        let mut naive_cfg = cfg.clone();
        naive_cfg.fast_forward = false;
        let mut ff_cfg = cfg;
        ff_cfg.fast_forward = true;
        let naive = run_w(w, naive_cfg, 500_000_000);
        let ff = run_w(w, ff_cfg, 500_000_000);
        let invisible = naive.cycles == ff.cycles && naive.committed == ff.committed;
        all_invisible &= invisible;
        run.metrics.push(format!("{label}_cycles"), ff.cycles as f64);
        run.metrics.push(format!("{label}_committed"), ff.committed as f64);
        run.line(format!("{label},{},{},{invisible}", ff.cycles, ff.committed));
    }
    run.check(
        "fast_forward_invisible",
        "idle-cycle fast-forward is architecturally invisible (identical cycles and commits)",
        all_invisible,
        all_invisible,
    );

    let sweep_cfg = SweepConfig {
        trials: ctx.sized(16, 4),
        threads: ctx.threads,
        seed: ctx.seed,
        ..SweepConfig::default()
    };
    run.note("sweep_trials", sweep_cfg.trials.to_string());
    let sweep = run_pht_sweep(&sweep_cfg);
    sweep.emit_metrics("sweep", &mut run.metrics);
    run.line(format!(
        "sweep: {}/{} secrets recovered (accuracy {:.2})",
        sweep.successes(),
        sweep.trials.len(),
        sweep.accuracy()
    ));
    run.check(
        "sweep_full_accuracy",
        "every multi-trial sweep secret is recovered on the runahead machine",
        sweep.accuracy() == 1.0,
        format!("{}/{}", sweep.successes(), sweep.trials.len()),
    );
    run
}

// ---------------------------------------------------------------------------
// pool_matrix — the whole attack/defense matrix as ONE fork campaign:
// every shard warms a single snapshot session and forks it copy-on-write
// per planted secret, instead of rebuilding a machine per cell the way the
// per-figure scenarios do. The invariants re-state the per-figure verdicts
// (Fig. 9/11 leaks, §6 defenses, the §4.4 BTB/RSB variants and the
// SL-does-not-cover-BTB finding) over the pooled execution, plus the
// thread-count invariance the CI pool-repro byte compare depends on.
// ---------------------------------------------------------------------------

fn run_pool_matrix(ctx: &RunContext) -> ScenarioRun {
    use specrun_workloads::plan::PlanPolicy;
    use specrun_workloads::pool::CampaignSpec;

    let mut run = ScenarioRun::new(&scenario("pool_matrix"), ctx);
    let mut spec = CampaignSpec::paper_matrix();
    spec.seed = ctx.seed;
    if ctx.quick {
        spec.secrets.truncate(2); // [86, 127] — the paper's two figure secrets
    }
    run.note("shards", spec.shards.len().to_string());
    run.note("secrets_per_shard", spec.secrets.len().to_string());
    run.note("forked_sessions", spec.unit_count().to_string());
    for shard in &spec.shards {
        run.digest(shard.label(), &specrun::pool::shard_config(&spec, shard));
    }

    let report = specrun::run_campaign(&spec, worker_threads(ctx));
    run.metrics = report.metrics();

    run.line("shard,units,leaks,leak_rate,runahead_entries,inv_branches,status".to_string());
    for shard in &report.shards {
        run.line(format!(
            "{},{},{},{:.3},{},{},{}",
            shard.spec.label(),
            shard.stats.units,
            shard.stats.leaks,
            shard.stats.leak_rate(),
            shard.stats.runahead_entries,
            shard.stats.inv_branches,
            shard.status.label()
        ));
    }

    let rate = |label: &str| {
        report
            .shards
            .iter()
            .find(|s| s.spec.label() == label)
            .map_or(f64::NAN, |s| s.stats.leak_rate())
    };
    run.check(
        "all_shards_complete",
        "every shard of the campaign runs to completion on the first attempt",
        report.all_done() && !report.breaker_tripped,
        format!("{}/{} done", report.completed(), report.shards.len()),
    );
    let vulnerable =
        ["pht_runahead", "pht_runahead_s300", "btb_runahead_s300", "rsb_runahead_s300"];
    run.check(
        "runahead_shards_leak",
        "every forked session on the vulnerable runahead machine recovers its secret \
         (PHT in the Fig. 9 and Fig. 11 shapes, plus the §4.4 BTB/RSB variants)",
        vulnerable.iter().all(|l| rate(l) == 1.0),
        vulnerable.iter().map(|l| format!("{l} {:.2}", rate(l))).collect::<Vec<_>>().join(", "),
    );
    let defended = ["pht_norunahead_s300", "pht_secure_s300", "pht_skipinv_s300"];
    run.check(
        "pht_defenses_hold",
        "past the ROB, the no-runahead baseline and both §6 defenses leak nothing",
        defended.iter().all(|l| rate(l) == 0.0),
        defended.iter().map(|l| format!("{l} {:.2}", rate(l))).collect::<Vec<_>>().join(", "),
    );
    run.check(
        "sl_cache_does_not_cover_btb",
        "SpectreBTB still leaks on the SL-cache machine (the paper's finding that the \
         §6 scheme does not cover the BTB/RSB variants)",
        rate("btb_secure_s300") == 1.0,
        format!("{:.2}", rate("btb_secure_s300")),
    );
    let signatures_ok = report.shards.iter().all(|s| {
        if s.spec.policy == PlanPolicy::NoRunahead {
            s.stats.runahead_entries == 0
        } else {
            s.stats.runahead_entries > 0
        }
    });
    run.check(
        "runahead_signature_per_policy",
        "runahead-capable shards enter runahead; the disabled baseline never does",
        signatures_ok,
        report
            .shards
            .iter()
            .map(|s| format!("{} {}", s.spec.label(), s.stats.runahead_entries))
            .collect::<Vec<_>>()
            .join(", "),
    );
    // The in-process half of the CI pool-repro byte compare: a serial
    // re-run of the same spec must reproduce the parallel report exactly,
    // shard fingerprints included.
    let serial = specrun::run_campaign(&spec, 1);
    run.check(
        "thread_count_invariant",
        "a serial re-run reproduces the pooled report bit for bit (fingerprints included)",
        serial == report,
        format!(
            "fingerprints {:?}",
            report.shards.iter().map(|s| s.stats.fingerprint).collect::<Vec<_>>()
        ),
    );
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_complete() {
        let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate scenario names");
        for legacy in
            ["fig7", "fig9", "fig10", "fig11", "table1", "variants", "defense", "bench_step"]
        {
            assert!(names.contains(&legacy), "legacy experiment {legacy} missing from registry");
        }
    }

    #[test]
    fn find_resolves_by_name() {
        assert_eq!(find("fig7").unwrap().name, "fig7");
        assert!(find("fig12").is_none());
    }

    #[test]
    fn table1_passes_quickly() {
        let run = run_table1(&RunContext::quick());
        assert!(run.passed(), "failures: {:?}", run.failures());
        assert_eq!(run.metrics.get("rob_entries"), Some(256.0));
    }

    #[test]
    fn pool_matrix_passes_quickly() {
        let run = run_pool_matrix(&RunContext::quick());
        assert!(run.passed(), "failures: {:?}", run.failures());
        // Quick mode: 8 shards × 2 secrets, every session forked from its
        // shard's snapshot.
        assert_eq!(run.metrics.get("total_units"), Some(16.0));
        assert_eq!(run.metrics.get("total_leaks"), Some(10.0), "5 leaking shards × 2 secrets");
    }
}
