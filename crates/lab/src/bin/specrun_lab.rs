//! The `specrun-lab` campaign runner: `list`, `run`, `perf`.

fn main() {
    std::process::exit(specrun_lab::cli::main())
}
