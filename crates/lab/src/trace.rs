//! `specrun-lab trace` — record, replay and diff pipeline-event logs.
//!
//! The forensic loop the trace subsystem closes:
//!
//! * **record** runs the fixed-geometry Fig. 11 PHT PoC (the `leak_trace`
//!   shape: slide > ROB, secret 127) on a chosen machine policy with the
//!   ground-truth observers attached, and streams every pipeline event
//!   into a delta-encoded binary log (`specrun_trace` format) written
//!   through the [`crate::sink::ArtifactSink`] atomic protocol;
//! * **replay** re-drives fresh observers from the log alone — no
//!   simulator — and derives the same metrics the live run derived. The
//!   geometry is pinned (quick = full on `leak_trace`), so a replay needs
//!   no metadata beside the log; the CI `trace-repro` job byte-compares
//!   the two metric files;
//! * **diff** aligns two logs by behavioural content (cycles and taint
//!   annotations stripped) and prints the first divergent event with
//!   commit/runahead-episode anchors — "where does the secure machine
//!   first behave differently from the attacked one".
//!
//! Exit codes follow the lab convention: 0 success (diff: identical),
//! 1 divergence found, 2 usage/IO/corrupt-log errors.

use std::path::{Path, PathBuf};

use specrun::attack::{run_pht_poc, PocConfig};
use specrun::session::{leak_trace_for, Policy, Session};
use specrun_cpu::probe::{CountingObserver, LeakTraceObserver};
use specrun_cpu::CpuConfig;
use specrun_trace::{
    encode_events, first_divergence, read_trace_file, stream_stats, PipelineEvent, TraceSink as _,
};

use crate::json::Json;
use crate::registry::FIG11_SLIDE;
use crate::sink::{ArtifactSink, ArtifactTraceSink, FsSink};

/// A parsed `specrun-lab trace` invocation.
#[derive(Debug, PartialEq)]
pub(crate) enum TraceCommand {
    /// `trace record --out PATH`: run the PoC live and write the log.
    Record {
        /// Where the binary log goes.
        out: PathBuf,
        /// The machine under test.
        policy: Policy,
        /// Optional metrics-JSON path (observer-derived values only).
        metrics: Option<PathBuf>,
    },
    /// `trace replay LOG`: re-derive the analysis from the log alone.
    Replay {
        /// The log to replay.
        path: PathBuf,
        /// Optional metrics-JSON path — byte-identical to the live one.
        metrics: Option<PathBuf>,
    },
    /// `trace diff A B`: first behavioural divergence between two logs.
    Diff {
        /// The first log (conventionally the attacked machine).
        a: PathBuf,
        /// The second log (conventionally the defended machine).
        b: PathBuf,
    },
}

fn parse_policy(v: &str) -> Result<Policy, String> {
    match v {
        "runahead" => Ok(Policy::Runahead),
        "secure" => Ok(Policy::Secure),
        "no_runahead" => Ok(Policy::NoRunahead),
        other => Err(format!("unknown policy {other} (expected runahead, secure or no_runahead)")),
    }
}

fn policy_label(policy: Policy) -> &'static str {
    match policy {
        Policy::Runahead => "runahead",
        Policy::Secure => "secure",
        Policy::NoRunahead => "no_runahead",
        // The remaining policies are not reachable from the CLI parser.
        _ => "custom",
    }
}

pub(crate) fn parse_trace_args(args: &[String]) -> Result<TraceCommand, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("record") => {
            let mut out = None;
            let mut policy = Policy::Runahead;
            let mut metrics = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
                    "--policy" => {
                        policy = parse_policy(it.next().ok_or("--policy needs a name")?)?;
                    }
                    "--metrics" => {
                        metrics = Some(PathBuf::from(it.next().ok_or("--metrics needs a path")?));
                    }
                    other => return Err(format!("unknown trace record option {other}")),
                }
            }
            let out = out.ok_or("trace record needs --out PATH")?;
            Ok(TraceCommand::Record { out, policy, metrics })
        }
        Some("replay") => {
            let mut path = None;
            let mut metrics = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--metrics" => {
                        metrics = Some(PathBuf::from(it.next().ok_or("--metrics needs a path")?));
                    }
                    flag if flag.starts_with('-') => {
                        return Err(format!("unknown trace replay option {flag}"));
                    }
                    p if path.is_none() => path = Some(PathBuf::from(p)),
                    extra => return Err(format!("unexpected trace replay argument {extra}")),
                }
            }
            let path = path.ok_or("trace replay needs a log file")?;
            Ok(TraceCommand::Replay { path, metrics })
        }
        Some("diff") => {
            let positional: Vec<&String> = it.collect();
            match positional.as_slice() {
                [a, b] if !a.starts_with('-') && !b.starts_with('-') => {
                    Ok(TraceCommand::Diff { a: PathBuf::from(a), b: PathBuf::from(b) })
                }
                _ => Err("trace diff needs exactly two log files".into()),
            }
        }
        Some(other) => {
            Err(format!("unknown trace subcommand {other} (expected record, replay or diff)"))
        }
        None => Err("trace needs a subcommand: record, replay or diff".into()),
    }
}

/// The pinned PoC every trace command assumes: the `leak_trace` scenario
/// shape. Because the geometry is a constant of the binary, `replay` can
/// rebuild the exact observers the live run used from the log alone.
fn poc() -> PocConfig {
    PocConfig::fig11(FIG11_SLIDE)
}

fn fresh_tracer(cfg: &PocConfig) -> LeakTraceObserver {
    leak_trace_for(&cfg.layout, &CpuConfig::default())
}

/// The observer-derived metric document. Every value is a pure function
/// of the event stream (plus the pinned geometry), so a live `record` and
/// a detached `replay` of its log produce byte-identical files — the CI
/// byte-compare that proves the log is lossless.
fn metrics_json(events: usize, counts: &CountingObserver, tracer: &LeakTraceObserver) -> Json {
    let num = |v: u64| Json::Num(v as f64);
    let fields = [
        ("events", num(events as u64)),
        ("runahead_enters", num(counts.runahead_enters)),
        ("runahead_exits", num(counts.runahead_exits)),
        ("squash_events", num(counts.squash_events)),
        ("squashed_total", num(counts.squashed_total)),
        ("commits", num(counts.commits)),
        ("branches_resolved", num(counts.branches_resolved)),
        ("mispredicts", num(counts.mispredicts)),
        ("transient_loads", num(counts.transient_loads)),
        ("tainted_loads", num(counts.tainted_loads)),
        ("fills", num(counts.fills)),
        ("transient_fills", num(counts.transient_fills)),
        ("flushes", num(counts.flushes)),
        ("transient_secret_fills", num(tracer.transient_secret_fills())),
        ("secret_reads", num(tracer.secret_reads())),
        ("ground_truth_byte", tracer.ground_truth_byte(&[0]).map_or(Json::Null, |b| num(b as u64))),
        ("fills_per_entry", Json::Arr(tracer.fills_per_entry().iter().map(|&f| num(f)).collect())),
    ];
    Json::obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_metrics(
    path: Option<&Path>,
    events: usize,
    counts: &CountingObserver,
    tracer: &LeakTraceObserver,
) -> Result<(), String> {
    let Some(path) = path else { return Ok(()) };
    let doc = metrics_json(events, counts, tracer).render();
    FsSink.write_atomic(path, &doc).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("wrote {}", path.display());
    Ok(())
}

fn record(out: &Path, policy: Policy, metrics: Option<&Path>) -> Result<i32, String> {
    let cfg = poc();
    let mut session = Session::builder()
        .policy(policy)
        .observer((CountingObserver::default(), fresh_tracer(&cfg)))
        .trace(out)
        .build();
    let outcome = run_pht_poc(&mut session, &cfg);
    let events = session.recorded_events().to_vec();
    let bytes = encode_events(&events);
    ArtifactTraceSink(&FsSink)
        .write_trace(out, &bytes)
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    let (counts, tracer) = session.observer().0.clone();
    println!(
        "recorded {} event(s) ({} bytes) from the {} machine to {}",
        events.len(),
        bytes.len(),
        policy_label(policy),
        out.display()
    );
    println!(
        "timing leaked {:?}; ground truth {:?}; transient secret fills {}",
        outcome.leaked,
        tracer.ground_truth_byte(&[0]),
        tracer.transient_secret_fills()
    );
    write_metrics(metrics, events.len(), &counts, &tracer)?;
    Ok(0)
}

fn load_events(path: &Path) -> Result<Vec<PipelineEvent>, String> {
    let decoded =
        read_trace_file(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if decoded.torn_tail {
        eprintln!(
            "warning: {} has a torn tail; the final partial block was dropped",
            path.display()
        );
    }
    Ok(decoded.events)
}

fn replay_log(path: &Path, metrics: Option<&Path>) -> Result<i32, String> {
    let events = load_events(path)?;
    let cfg = poc();
    let mut observers = (CountingObserver::default(), fresh_tracer(&cfg));
    specrun_trace::replay(&events, &mut observers);
    let (counts, tracer) = observers;
    println!("replayed {} event(s) from {} (no simulator)", events.len(), path.display());
    println!(
        "ground truth {:?}; transient secret fills {}; commits {}",
        tracer.ground_truth_byte(&[0]),
        tracer.transient_secret_fills(),
        counts.commits
    );
    write_metrics(metrics, events.len(), &counts, &tracer)?;
    Ok(0)
}

fn diff_logs(path_a: &Path, path_b: &Path) -> Result<i32, String> {
    let a = load_events(path_a)?;
    let b = load_events(path_b)?;
    for (path, events) in [(path_a, &a), (path_b, &b)] {
        let s = stream_stats(events);
        println!(
            "{}: {} event(s), {} commit(s), {} runahead episode(s), {} transient fill(s)",
            path.display(),
            s.events,
            s.commits,
            s.runahead_enters,
            s.transient_fills
        );
    }
    match first_divergence(&a, &b) {
        None => {
            println!("traces are behaviourally identical");
            Ok(0)
        }
        Some(d) => {
            println!("{}", d.describe());
            Ok(1)
        }
    }
}

/// Executes `specrun-lab trace …`. `Err` is reserved for usage errors
/// (the caller prints the synopsis); operational failures — unreadable
/// or corrupt logs, IO — report themselves here and exit 2 without the
/// usage dump.
pub fn trace_command(args: &[String]) -> Result<i32, String> {
    let run = match parse_trace_args(args)? {
        TraceCommand::Record { out, policy, metrics } => record(&out, policy, metrics.as_deref()),
        TraceCommand::Replay { path, metrics } => replay_log(&path, metrics.as_deref()),
        TraceCommand::Diff { a, b } => diff_logs(&a, &b),
    };
    Ok(run.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        2
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("trace_{}_{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parses_trace_commands() {
        assert_eq!(
            parse_trace_args(&strings(&["record", "--out", "t.bin"])).unwrap(),
            TraceCommand::Record {
                out: PathBuf::from("t.bin"),
                policy: Policy::Runahead,
                metrics: None,
            }
        );
        assert_eq!(
            parse_trace_args(&strings(&[
                "record",
                "--out",
                "t.bin",
                "--policy",
                "secure",
                "--metrics",
                "m.json",
            ]))
            .unwrap(),
            TraceCommand::Record {
                out: PathBuf::from("t.bin"),
                policy: Policy::Secure,
                metrics: Some(PathBuf::from("m.json")),
            }
        );
        assert_eq!(
            parse_trace_args(&strings(&["replay", "t.bin", "--metrics", "m.json"])).unwrap(),
            TraceCommand::Replay {
                path: PathBuf::from("t.bin"),
                metrics: Some(PathBuf::from("m.json")),
            }
        );
        assert_eq!(
            parse_trace_args(&strings(&["diff", "a.bin", "b.bin"])).unwrap(),
            TraceCommand::Diff { a: PathBuf::from("a.bin"), b: PathBuf::from("b.bin") }
        );
    }

    #[test]
    fn rejects_bad_trace_usage() {
        assert!(parse_trace_args(&strings(&[])).is_err(), "no subcommand");
        assert!(parse_trace_args(&strings(&["bogus"])).is_err(), "unknown subcommand");
        assert!(parse_trace_args(&strings(&["record"])).is_err(), "record needs --out");
        assert!(parse_trace_args(&strings(&["record", "--policy", "x"])).is_err(), "bad policy");
        assert!(parse_trace_args(&strings(&["replay"])).is_err(), "replay needs a log");
        assert!(parse_trace_args(&strings(&["replay", "a", "b"])).is_err(), "one log only");
        assert!(parse_trace_args(&strings(&["diff", "a"])).is_err(), "diff needs two logs");
        assert!(parse_trace_args(&strings(&["diff", "a", "b", "c"])).is_err(), "exactly two");
        // Operational failures are not usage errors: they self-report and
        // exit 2 without triggering the caller's usage dump.
        assert_eq!(trace_command(&strings(&["replay", "/nonexistent/trace.bin"])), Ok(2));
    }

    #[test]
    fn record_replay_metrics_are_byte_identical() {
        let dir = scratch("roundtrip");
        let log = dir.join("t.bin");
        let live = dir.join("live.json");
        let detached = dir.join("replay.json");
        let args = strings(&[
            "record",
            "--out",
            log.to_str().unwrap(),
            "--metrics",
            live.to_str().unwrap(),
        ]);
        assert_eq!(trace_command(&args).unwrap(), 0);
        let args =
            strings(&["replay", log.to_str().unwrap(), "--metrics", detached.to_str().unwrap()]);
        assert_eq!(trace_command(&args).unwrap(), 0);
        let live_bytes = std::fs::read(&live).unwrap();
        assert_eq!(live_bytes, std::fs::read(&detached).unwrap(), "replay loses information");
        let text = String::from_utf8(live_bytes).unwrap();
        assert!(text.contains("\"ground_truth_byte\": 127"), "leak survives the round trip");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_pinpoints_the_suppressed_secret_fill() {
        let dir = scratch("diff");
        let attacked = dir.join("runahead.bin");
        let secured = dir.join("secure.bin");
        for (path, policy) in [(&attacked, "runahead"), (&secured, "secure")] {
            let args = strings(&["record", "--out", path.to_str().unwrap(), "--policy", policy]);
            assert_eq!(trace_command(&args).unwrap(), 0);
        }
        let diff = strings(&["diff", attacked.to_str().unwrap(), secured.to_str().unwrap()]);
        assert_eq!(trace_command(&diff).unwrap(), 1, "the machines must diverge");
        let same = strings(&["diff", attacked.to_str().unwrap(), attacked.to_str().unwrap()]);
        assert_eq!(trace_command(&same).unwrap(), 0, "a trace never diverges from itself");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
