//! The simulator-throughput benchmark and perf-regression gate
//! (`specrun-lab perf`, aliased by the legacy `bench_step` binary).
//!
//! Emits `BENCH_step.json` with cycles-simulated-per-second on fixed
//! kernels (idle-cycle fast-forward off vs on) and the thread-scaling of a
//! Fig. 9-style multi-trial attack sweep, then optionally gates the rates
//! against a baseline report.
//!
//! Unlike the deterministic `bench_step` *scenario* in the registry (cycle
//! counts, invariants), everything here is wall-clock — which is exactly
//! why it lives outside the byte-identical artifact path.
//!
//! **Baseline safety:** the baseline is read *before* the new report is
//! written, so gating against the committed `BENCH_step.json` in place
//! (`--baseline BENCH_step.json`, or the `SPECRUN_BENCH_BASELINE` env var)
//! can never compare a file this run just overwrote. `--baseline-from-git`
//! goes one step further and reads the committed copy via
//! `git show HEAD:BENCH_step.json`, so a dirty working tree cannot feed
//! the gate either.

use std::time::Instant;

use specrun::attack::{run_pht_sweep, SweepConfig};
use specrun::pool::{run_unit_fresh, ShardSnapshot};
use specrun_cpu::{Core, CpuConfig};
use specrun_isa::ProgramBuilder;
use specrun_trace::RecordingObserver;
use specrun_workloads::harness;
use specrun_workloads::ipc::{run_workload_observed, run_workload_timed};
use specrun_workloads::kernels;
use specrun_workloads::pool::CampaignSpec;
use specrun_workloads::Workload;

use crate::report::{parse_metrics, BenchReport};

/// Metrics that the baseline gate must always manage to compare — the
/// busy-pipeline (non-fast-forward) rates a front-end or scheduler
/// regression would hit first, plus the trace-recording rate guarding the
/// observer seam. A renamed scenario silently dropping one of these from
/// the comparison must fail CI, not pass it.
const GATE_REQUIRED: &[&str] = &[
    "mcf_runahead_naive_cycles_per_sec",
    "pointer_chase_runahead_naive_cycles_per_sec",
    "trace_record_cycles_per_sec",
];

/// Where the perf gate's baseline report comes from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BaselineSource {
    /// No gating; just measure and write the report.
    #[default]
    None,
    /// A report file on disk (read before the new report is written).
    Path(String),
    /// The committed `BENCH_step.json` at `HEAD`, via `git show`.
    Git,
}

/// Options of one perf run.
#[derive(Debug, Clone)]
pub struct PerfOptions {
    /// Reduced iteration counts for CI (rates stay comparable; cycle
    /// counts do not).
    pub quick: bool,
    /// Baseline to gate against.
    pub baseline: BaselineSource,
    /// Maximum tolerated fractional drop in any `*_cycles_per_sec` metric
    /// before the gate fails (default 0.25).
    pub max_drop: f64,
    /// Wall-clock measurements per workload; the *best* (fastest) of the
    /// repeats is reported. On a noisy shared host a single sample can be
    /// arbitrarily slowed by an unlucky descheduling — the minimum is the
    /// closest observable to the machine's true rate, so best-of-N cuts
    /// false perf-gate failures without loosening the threshold (CI uses
    /// `--repeats 3`). Default 1.
    pub repeats: u32,
}

impl Default for PerfOptions {
    fn default() -> PerfOptions {
        PerfOptions { quick: false, baseline: BaselineSource::None, max_drop: 0.25, repeats: 1 }
    }
}

impl PerfOptions {
    /// Builds options from the legacy environment variables
    /// (`SPECRUN_BENCH_QUICK`, `SPECRUN_BENCH_BASELINE`,
    /// `SPECRUN_BENCH_GATE_MAX_DROP`) — the `bench_step` contract.
    pub fn from_env() -> PerfOptions {
        let mut opts = PerfOptions::default();
        if std::env::var("SPECRUN_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0") {
            opts.quick = true;
        }
        if let Ok(path) = std::env::var("SPECRUN_BENCH_BASELINE") {
            if !path.is_empty() {
                opts.baseline = BaselineSource::Path(path);
            }
        }
        if let Some(drop) =
            std::env::var("SPECRUN_BENCH_GATE_MAX_DROP").ok().and_then(|v| v.parse().ok())
        {
            opts.max_drop = drop;
        }
        if let Some(repeats) = std::env::var("SPECRUN_BENCH_REPEATS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&r: &u32| r > 0)
        {
            opts.repeats = repeats;
        }
        opts
    }

    /// Applies `perf` subcommand flags on top (`--quick`,
    /// `--baseline PATH`, `--baseline-from-git`, `--max-drop F`,
    /// `--repeats N`).
    pub fn apply_args(mut self, args: &[String]) -> Result<PerfOptions, String> {
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => self.quick = true,
                "--baseline" => {
                    let path = it.next().ok_or("--baseline needs a path")?;
                    self.baseline = BaselineSource::Path(path.clone());
                }
                "--baseline-from-git" => self.baseline = BaselineSource::Git,
                "--max-drop" => {
                    let v = it.next().ok_or("--max-drop needs a value")?;
                    self.max_drop =
                        v.parse().map_err(|_| format!("invalid --max-drop value {v}"))?;
                }
                "--repeats" => {
                    let v = it.next().ok_or("--repeats needs a count")?;
                    self.repeats = v.parse().map_err(|_| format!("invalid --repeats value {v}"))?;
                    if self.repeats == 0 {
                        return Err("--repeats must be at least 1".to_string());
                    }
                }
                other => return Err(format!("unknown perf option {other}")),
            }
        }
        Ok(self)
    }
}

/// Reads the baseline report contents, *before* any new report is written.
fn read_baseline(source: &BaselineSource) -> Result<Option<String>, String> {
    match source {
        BaselineSource::None => Ok(None),
        BaselineSource::Path(path) => std::fs::read_to_string(path)
            .map(Some)
            .map_err(|e| format!("cannot read baseline {path}: {e}")),
        BaselineSource::Git => {
            let out = std::process::Command::new("git")
                .args(["show", "HEAD:BENCH_step.json"])
                .output()
                .map_err(|e| format!("cannot spawn git: {e}"))?;
            if !out.status.success() {
                return Err(format!(
                    "git show HEAD:BENCH_step.json failed: {}",
                    String::from_utf8_lossy(&out.stderr).trim()
                ));
            }
            String::from_utf8(out.stdout)
                .map(Some)
                .map_err(|e| format!("committed baseline is not UTF-8: {e}"))
        }
    }
}

struct KernelResult {
    cycles: u64,
    naive_secs: f64,
    ff_secs: f64,
}

fn measure_kernel(w: &Workload, base: CpuConfig, max_cycles: u64, repeats: u32) -> KernelResult {
    let mut naive_cfg = base.clone();
    naive_cfg.fast_forward = false;
    let mut ff_cfg = base;
    ff_cfg.fast_forward = true;

    // `run_workload_timed` times only the simulation loop, so cycles/sec
    // is iteration-count-independent and a quick CI run stays comparable
    // to the committed full-mode baseline. Best-of-N wall clock per
    // configuration: the cycle counts are asserted identical across
    // repeats, only the host-side seconds vary.
    let mut best: Option<KernelResult> = None;
    for _ in 0..repeats.max(1) {
        let (naive, naive_secs) = run_workload_timed(w, naive_cfg.clone(), max_cycles);
        let (ff, ff_secs) = run_workload_timed(w, ff_cfg.clone(), max_cycles);
        assert_eq!(
            (naive.cycles, naive.committed),
            (ff.cycles, ff.committed),
            "fast-forward must be architecturally invisible on {}",
            w.name
        );
        let best = best.get_or_insert(KernelResult { cycles: ff.cycles, naive_secs, ff_secs });
        assert_eq!(best.cycles, ff.cycles, "repeats of {} must simulate identically", w.name);
        best.naive_secs = best.naive_secs.min(naive_secs);
        best.ff_secs = best.ff_secs.min(ff_secs);
    }
    best.expect("at least one repeat ran")
}

struct TraceOverheadResult {
    cycles: u64,
    events: u64,
    noop_secs: f64,
    record_secs: f64,
}

/// Times the same commit-heavy kernel with the no-op observer against a
/// [`RecordingObserver`] buffering the full pipeline-event stream — the
/// cost a forensic trace adds to a run. The recorder must be
/// simulation-invisible (identical cycles and commits) and the recorded
/// event count must not vary across repeats; only the host-side seconds
/// do, and the best of `repeats` is reported.
fn measure_trace_overhead(
    w: &Workload,
    base: CpuConfig,
    max_cycles: u64,
    repeats: u32,
) -> TraceOverheadResult {
    let mut best: Option<TraceOverheadResult> = None;
    for _ in 0..repeats.max(1) {
        let (plain, noop_secs) = run_workload_timed(w, base.clone(), max_cycles);
        let (recorded, record_secs, recorder) =
            run_workload_observed(w, base.clone(), max_cycles, RecordingObserver::new());
        assert_eq!(
            (plain.cycles, plain.committed),
            (recorded.cycles, recorded.committed),
            "the recording observer must be simulation-invisible on {}",
            w.name
        );
        let events = recorder.len() as u64;
        let best = best.get_or_insert(TraceOverheadResult {
            cycles: recorded.cycles,
            events,
            noop_secs,
            record_secs,
        });
        assert_eq!(
            (best.cycles, best.events),
            (recorded.cycles, events),
            "repeats of {} must record identical streams",
            w.name
        );
        best.noop_secs = best.noop_secs.min(noop_secs);
        best.record_secs = best.record_secs.min(record_secs);
    }
    best.expect("at least one repeat ran")
}

struct PoolResult {
    fork_secs: f64,
    fresh_secs: f64,
    fork_units: u32,
    fresh_units: u32,
}

/// Times fork-based pooling against fresh per-session builds on one
/// matrix shard. The fork path pays `ShardSnapshot::prepare` (session
/// build, cache warm-up, program predecode, BTB training where relevant)
/// once and is charged for it, then forks a copy-on-write session per
/// unit; the fresh path repeats the whole build per unit — exactly what a
/// campaign without the pool would do. Best wall clock over `repeats`;
/// every unit's leak is asserted so a silently-broken attack can never
/// post a throughput number.
///
/// Unit counts are identical in quick and full mode: the whole
/// measurement is tens of milliseconds, and scaling it down would skew
/// the rates (fewer units amortize first-unit cold costs worse), making
/// quick CI runs incomparable to the committed full-mode baseline.
fn measure_pool(spec: &CampaignSpec, repeats: u32) -> PoolResult {
    let shard = &spec.shards[0]; // pht_runahead: the Fig. 9 cell
    let fork_units = 24;
    let fresh_units = 6;
    let secret = |i: u32| spec.secrets[i as usize % spec.secrets.len()];
    let mut best: Option<PoolResult> = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let snapshot = ShardSnapshot::prepare(spec, shard);
        for i in 0..fork_units {
            let unit = snapshot.run_forked(secret(i), None).expect("forked unit completes");
            assert_eq!(unit.leaked, Some(secret(i)), "forked unit must leak its secret");
        }
        let fork_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        for i in 0..fresh_units {
            let unit = run_unit_fresh(spec, shard, secret(i)).expect("fresh unit completes");
            assert_eq!(unit.leaked, Some(secret(i)), "fresh unit must leak its secret");
        }
        let fresh_secs = t.elapsed().as_secs_f64();

        let best =
            best.get_or_insert(PoolResult { fork_secs, fresh_secs, fork_units, fresh_units });
        best.fork_secs = best.fork_secs.min(fork_secs);
        best.fresh_secs = best.fresh_secs.min(fresh_secs);
    }
    best.expect("at least one repeat ran")
}

/// Runs a nop slide of `n` instructions to completion with the text image
/// pre-warmed into L1I, timing only the simulation loop (best wall clock
/// over `repeats` runs). Naive stepping (fast-forward off): the pipeline
/// is busy every cycle, which is exactly the case the sub-timer exists to
/// measure.
fn measure_frontend_nop_slide(n: usize, repeats: u32) -> (u64, f64) {
    let mut b = ProgramBuilder::new(0x1000);
    b.nops(n);
    b.halt();
    let program = b.build().expect("nop slide builds");
    let mut cfg = CpuConfig::no_runahead();
    cfg.fast_forward = false;
    let mut best: Option<(u64, f64)> = None;
    for _ in 0..repeats.max(1) {
        let mut core = Core::new(cfg.clone());
        let text_len = program.text_end() - program.text_base();
        core.mem_mut().warm_ifetch_range(program.text_base(), text_len);
        core.load_program(&program);
        let start = Instant::now();
        let exit = core.run(100_000_000);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(exit, specrun_cpu::RunExit::Halted, "nop slide must halt");
        let best = best.get_or_insert((core.stats().cycles, secs));
        assert_eq!(best.0, core.stats().cycles, "nop-slide repeats must simulate identically");
        best.1 = best.1.min(secs);
    }
    best.expect("at least one repeat ran")
}

/// Runs the full throughput benchmark, writes `BENCH_step.json`, and gates
/// against the configured baseline. Returns the process exit code.
pub fn run(opts: &PerfOptions) -> i32 {
    // Read the baseline FIRST: the report write below may overwrite the
    // very file the baseline points at.
    let baseline = match read_baseline(&opts.baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf gate: {e}");
            return 1;
        }
    };

    let quick = opts.quick;
    let iters = if quick { 400 } else { 3000 };
    let sweep_trials = if quick { 8 } else { 24 };

    let mut report = BenchReport::new("step");
    report.note("quick_mode", if quick { "yes" } else { "no" });
    report.note("repeats", opts.repeats.to_string());

    // Session-pool throughput: the tentpole claim that copy-on-write
    // forking beats rebuilding a session per unit. Rates are per *session
    // executed*, prepare cost included on the fork side. Measured FIRST,
    // before any mode-dependent work: the fresh-build rate is sensitive to
    // process state (allocator warm-up from long full-mode kernel runs),
    // and the gate compares quick CI runs against a full-mode baseline —
    // both must measure from the same cold start.
    println!("== session-pool throughput: copy-on-write forks vs fresh builds ==");
    println!("path,units,wall_secs,sessions_per_sec");
    let pool_spec = CampaignSpec::paper_matrix();
    let pool = measure_pool(&pool_spec, opts.repeats);
    let fork_rate = f64::from(pool.fork_units) / pool.fork_secs;
    let fresh_rate = f64::from(pool.fresh_units) / pool.fresh_secs;
    println!("fork,{},{:.3},{:.2}", pool.fork_units, pool.fork_secs, fork_rate);
    println!("fresh,{},{:.3},{:.2}", pool.fresh_units, pool.fresh_secs, fresh_rate);
    println!("fork_speedup,{:.2}x", fork_rate / fresh_rate);
    report.metric("pool_fork_sessions_per_sec", fork_rate);
    report.metric("pool_fresh_sessions_per_sec", fresh_rate);
    report.metric("pool_fork_speedup", fork_rate / fresh_rate);

    println!();
    println!("== simulator throughput: naive stepping vs idle-cycle fast-forward ==");
    println!("kernel,machine,cycles,naive_Mcyc_per_s,ff_Mcyc_per_s,speedup");
    let chase = kernels::pointer_chase(iters);
    let mcf = kernels::mcf(iters / 2);
    for (label, w, cfg) in [
        ("pointer_chase/no_runahead", &chase, CpuConfig::no_runahead()),
        ("pointer_chase/runahead", &chase, CpuConfig::default()),
        ("mcf/no_runahead", &mcf, CpuConfig::no_runahead()),
        ("mcf/runahead", &mcf, CpuConfig::default()),
    ] {
        let r = measure_kernel(w, cfg, 500_000_000, opts.repeats);
        let naive_rate = r.cycles as f64 / r.naive_secs;
        let ff_rate = r.cycles as f64 / r.ff_secs;
        let speedup = r.naive_secs / r.ff_secs;
        println!(
            "{label},{},{:.2},{:.2},{:.2}",
            r.cycles,
            naive_rate / 1e6,
            ff_rate / 1e6,
            speedup
        );
        let key = label.replace('/', "_");
        report.metric(format!("{key}_cycles"), r.cycles as f64);
        report.metric(format!("{key}_naive_cycles_per_sec"), naive_rate);
        report.metric(format!("{key}_ff_cycles_per_sec"), ff_rate);
        report.metric(format!("{key}_ff_speedup"), speedup);
    }

    // Trace-recording overhead: what `specrun-lab trace record` (or
    // `Session::trace`) costs on a busy pipeline. mcf is the
    // commit-heaviest kernel, so its event stream is the densest the
    // recorder sees — the worst case for buffering overhead. The rate is
    // gated like the other hot paths (it ends in `_cycles_per_sec`): an
    // accidental allocation or dispatch cost on the observer seam lands
    // here first.
    println!();
    println!("== trace-recording overhead: RecordingObserver vs noop observer ==");
    println!("kernel,cycles,events,noop_Mcyc_per_s,record_Mcyc_per_s,Mevents_per_s,slowdown");
    let t = measure_trace_overhead(&mcf, CpuConfig::default(), 500_000_000, opts.repeats);
    let noop_rate = t.cycles as f64 / t.noop_secs;
    let record_rate = t.cycles as f64 / t.record_secs;
    let event_rate = t.events as f64 / t.record_secs;
    let slowdown = t.record_secs / t.noop_secs;
    println!(
        "mcf/runahead,{},{},{:.2},{:.2},{:.2},{:.3}",
        t.cycles,
        t.events,
        noop_rate / 1e6,
        record_rate / 1e6,
        event_rate / 1e6,
        slowdown
    );
    report.metric("trace_record_cycles_per_sec", record_rate);
    report.metric("trace_record_events_per_sec", event_rate);
    report.metric("trace_record_slowdown", slowdown);

    // Front-end sub-timer: a warmed nop slide has no memory operands, no
    // branches and no scheduler pressure, so its cycles/s isolates the
    // fetch → predecode-lookup → rename → retire path. Front-end wins (or
    // regressions) show up here even when the kernel rates above are
    // dominated by the memory system.
    println!();
    println!("== front-end sub-timer: warmed nop slide ==");
    println!("slide_insts,cycles,naive_Mcyc_per_s");
    let slide = if quick { 40_000 } else { 200_000 };
    let (fe_cycles, fe_secs) = measure_frontend_nop_slide(slide, opts.repeats);
    let fe_rate = fe_cycles as f64 / fe_secs;
    println!("{slide},{fe_cycles},{:.2}", fe_rate / 1e6);
    report.metric("frontend_nop_slide_cycles", fe_cycles as f64);
    report.metric("frontend_nop_slide_naive_cycles_per_sec", fe_rate);

    println!();
    let host_threads = harness::default_threads();
    println!(
        "== Fig. 9-style sweep scaling ({sweep_trials} trials, host has {host_threads} core(s)) =="
    );
    if host_threads < 4 {
        println!("note: wall-clock scaling needs >= 4 host cores; on this host the");
        println!("      sweep only demonstrates thread-safety and low fan-out overhead");
    }
    println!("threads,wall_secs,speedup,efficiency");
    let mut thread_points = vec![1usize, 2, 4];
    if host_threads > 4 {
        thread_points.push(host_threads.min(16));
    }
    thread_points.retain(|&t| t <= host_threads.max(4));
    let mut serial_secs = None;
    for &threads in &thread_points {
        let cfg = SweepConfig { trials: sweep_trials, threads, ..SweepConfig::default() };
        let t = Instant::now();
        let sweep = run_pht_sweep(&cfg);
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(
            sweep.successes(),
            sweep.trials.len(),
            "every sweep trial must leak on the runahead machine"
        );
        let base = *serial_secs.get_or_insert(secs);
        let speedup = base / secs;
        println!("{threads},{secs:.3},{speedup:.2},{:.2}", speedup / threads as f64);
        report.metric(format!("sweep_{threads}t_wall_secs"), secs);
        report.metric(format!("sweep_{threads}t_speedup"), speedup);
    }
    report.metric("sweep_trials", sweep_trials as f64);
    report.metric("host_threads", host_threads as f64);

    let path = match report.write() {
        Ok(path) => path,
        Err(e) => {
            // A full benchmark run is minutes of work — report the IO
            // failure and exit non-zero instead of panicking it away.
            eprintln!("error: cannot write BENCH_step.json: {e}");
            return 2;
        }
    };
    println!();
    println!("wrote {}", path.display());

    if let Some(baseline) = baseline {
        check_against_baseline(&report, &parse_metrics(&baseline), opts.max_drop)
    } else {
        0
    }
}

/// Returns 1 if any `*_cycles_per_sec` or `*_sessions_per_sec` metric
/// present in both reports dropped more than `max_drop` below the
/// baseline. Cycle counts and sweep wall times vary with quick mode and
/// host load; the per-second rates are iteration-count-independent, so
/// quick CI runs gate against the committed full-mode baseline. Rates are
/// still *host*-dependent — on a runner much slower than the baseline
/// host, widen the threshold (or re-commit a baseline measured on the
/// runner class) rather than letting the gate track machine speed instead
/// of regressions.
fn check_against_baseline(report: &BenchReport, baseline: &[(String, f64)], max_drop: f64) -> i32 {
    let mut failures = Vec::new();
    let mut compared = Vec::new();
    println!();
    println!("== perf gate: >={:.0}% drop vs baseline fails ==", max_drop * 100.0);
    println!("metric,baseline,current,ratio");
    for (key, current) in report.metrics() {
        if !key.ends_with("_cycles_per_sec") && !key.ends_with("_sessions_per_sec") {
            continue;
        }
        let Some((_, base)) = baseline.iter().find(|(k, _)| k == key) else { continue };
        compared.push(key.as_str());
        let ratio = current / base;
        println!("{key},{base:.0},{current:.0},{ratio:.2}");
        if ratio < 1.0 - max_drop {
            failures.push(format!("{key}: {current:.0}/s is {ratio:.2}x of baseline {base:.0}/s"));
        }
    }
    if compared.is_empty() {
        // A renamed scenario or stale baseline must not disable the gate.
        failures.push(
            "no *_cycles_per_sec or *_sessions_per_sec metric matched the baseline — \
             renamed scenarios or a stale baseline file would otherwise gate nothing"
                .to_string(),
        );
    }
    // The busy-pipeline rates must always be part of the comparison: they
    // are where front-end and scheduler regressions land, and fast-forward
    // cannot mask them.
    for required in GATE_REQUIRED {
        if !compared.contains(required) {
            failures.push(format!(
                "required metric {required} was not compared (missing from the report or \
                 the baseline) — the busy-pipeline gate would be silently disabled"
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!("perf gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        return 1;
    }
    println!("perf gate passed");
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_override_env_defaults() {
        let opts = PerfOptions::default()
            .apply_args(&[
                "--quick".to_string(),
                "--baseline".to_string(),
                "some.json".to_string(),
                "--max-drop".to_string(),
                "0.5".to_string(),
            ])
            .unwrap();
        assert!(opts.quick);
        assert_eq!(opts.baseline, BaselineSource::Path("some.json".into()));
        assert_eq!(opts.max_drop, 0.5);
        assert_eq!(opts.repeats, 1, "repeats defaults to a single sample");
    }

    #[test]
    fn repeats_flag_parses_and_rejects_zero() {
        let opts =
            PerfOptions::default().apply_args(&["--repeats".to_string(), "3".to_string()]).unwrap();
        assert_eq!(opts.repeats, 3);
        assert!(PerfOptions::default()
            .apply_args(&["--repeats".to_string(), "0".to_string()])
            .is_err());
        assert!(PerfOptions::default().apply_args(&["--repeats".to_string()]).is_err());
    }

    #[test]
    fn best_of_n_takes_the_fastest_sample() {
        let w = specrun_workloads::kernels::pointer_chase(40);
        let once = measure_kernel(&w, CpuConfig::default(), 10_000_000, 1);
        let thrice = measure_kernel(&w, CpuConfig::default(), 10_000_000, 3);
        assert_eq!(once.cycles, thrice.cycles, "repeats never change the simulation");
        assert!(thrice.naive_secs > 0.0 && thrice.ff_secs > 0.0);
    }

    #[test]
    fn trace_overhead_is_measured_on_identical_simulations() {
        // The recorder must not perturb the run it is measuring: same
        // cycles with and without it, same event count across repeats.
        let w = specrun_workloads::kernels::mcf(40);
        let r = measure_trace_overhead(&w, CpuConfig::default(), 10_000_000, 2);
        assert!(r.events > 0, "mcf must emit pipeline events");
        assert!(r.noop_secs > 0.0 && r.record_secs > 0.0);
    }

    #[test]
    fn pool_forks_beat_fresh_session_builds() {
        // The tentpole perf claim: amortizing one snapshot across
        // copy-on-write forks must out-rate rebuilding a session
        // (machine, programs, warm-up) for every unit. The strict
        // comparison only holds where the claim is made — release, where
        // the session build is the dominant per-unit cost. In debug the
        // unoptimized victim simulation dominates both paths, the
        // structural margin shrinks below scheduler noise (the suite
        // runs many test binaries concurrently), so we only sanity-bound
        // the ratio there; the release perf gate owns the strict claim.
        let spec = CampaignSpec::paper_matrix();
        let r = measure_pool(&spec, 3);
        let fork_rate = f64::from(r.fork_units) / r.fork_secs;
        let fresh_rate = f64::from(r.fresh_units) / r.fresh_secs;
        if cfg!(debug_assertions) {
            assert!(
                fork_rate > 0.5 * fresh_rate,
                "fork {fork_rate:.2}/s collapsed vs fresh {fresh_rate:.2}/s"
            );
        } else {
            assert!(
                fork_rate > fresh_rate,
                "fork {fork_rate:.2}/s must beat fresh {fresh_rate:.2}/s"
            );
        }
    }

    #[test]
    fn gate_covers_session_rates() {
        let mut current = BenchReport::new("step");
        current.metric("mcf_runahead_naive_cycles_per_sec", 100.0);
        current.metric("pointer_chase_runahead_naive_cycles_per_sec", 100.0);
        current.metric("trace_record_cycles_per_sec", 100.0);
        current.metric("pool_fork_sessions_per_sec", 50.0);
        let baseline = vec![
            ("mcf_runahead_naive_cycles_per_sec".to_string(), 100.0),
            ("pointer_chase_runahead_naive_cycles_per_sec".to_string(), 100.0),
            ("trace_record_cycles_per_sec".to_string(), 100.0),
            ("pool_fork_sessions_per_sec".to_string(), 100.0),
        ];
        assert_eq!(
            check_against_baseline(&current, &baseline, 0.25),
            1,
            "a 50% sessions/sec drop must fail the gate"
        );
        assert_eq!(check_against_baseline(&current, &baseline, 0.6), 0);
    }

    #[test]
    fn baseline_from_git_flag_parses() {
        let opts = PerfOptions::default().apply_args(&["--baseline-from-git".to_string()]).unwrap();
        assert_eq!(opts.baseline, BaselineSource::Git);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(PerfOptions::default().apply_args(&["--bogus".to_string()]).is_err());
        assert!(PerfOptions::default().apply_args(&["--baseline".to_string()]).is_err());
    }

    #[test]
    fn gate_fails_on_drop_and_passes_within_threshold() {
        let mut current = BenchReport::new("step");
        current.metric("mcf_runahead_naive_cycles_per_sec", 60.0);
        current.metric("pointer_chase_runahead_naive_cycles_per_sec", 100.0);
        current.metric("trace_record_cycles_per_sec", 100.0);
        let baseline = vec![
            ("mcf_runahead_naive_cycles_per_sec".to_string(), 100.0),
            ("pointer_chase_runahead_naive_cycles_per_sec".to_string(), 100.0),
            ("trace_record_cycles_per_sec".to_string(), 100.0),
        ];
        assert_eq!(check_against_baseline(&current, &baseline, 0.25), 1, "40% drop must fail");
        assert_eq!(check_against_baseline(&current, &baseline, 0.5), 0, "within 50% passes");
    }

    #[test]
    fn gate_fails_when_required_metric_missing() {
        let mut current = BenchReport::new("step");
        current.metric("mcf_runahead_naive_cycles_per_sec", 100.0);
        // pointer_chase missing from the baseline: required comparison gone.
        let baseline = vec![("mcf_runahead_naive_cycles_per_sec".to_string(), 100.0)];
        assert_eq!(check_against_baseline(&current, &baseline, 0.25), 1);
    }

    #[test]
    fn gate_fails_when_nothing_compares() {
        let current = BenchReport::new("step");
        assert_eq!(check_against_baseline(&current, &[], 0.25), 1);
    }
}
