//! Spec files and artifacts for fork campaigns: the IO half of
//! `specrun-lab pool`.
//!
//! The execution pipeline is split across three crates by dependency
//! direction: `specrun_workloads::pool` owns the declarative
//! [`CampaignSpec`] and the generic executor, `specrun::pool` owns the
//! session fork bridge, and this module owns the serialization boundary —
//! decoding a JSON spec file into a [`CampaignSpec`] and rendering a
//! [`PoolReport`] as the byte-stable `POOL_report.json` artifact that the
//! CI `pool-repro` job compares across runs and thread counts.
//!
//! Decoding is strict: unknown keys, out-of-range secrets and unlabelled
//! gadgets are errors, not defaults — a hand-edited spec that drifts from
//! the schema fails loudly instead of silently running something else.
//! The `layout`, `knobs` and `warm` sections are the only optional parts;
//! omitting them means "the paper machine".
//!
//! ```
//! use specrun_lab::pool::{parse_spec, report_json};
//! use specrun_workloads::pool::CampaignSpec;
//!
//! let spec = CampaignSpec::paper_matrix();
//! let decoded = parse_spec(&spec.to_json(0)).unwrap();
//! assert_eq!(decoded, spec, "the emitted spec decodes back to itself");
//! ```

use specrun_workloads::plan::{GadgetKind, KnobSpec, PlanLayout, PlanPolicy, WarmStep};
use specrun_workloads::pool::{CampaignSpec, PoolReport, ShardSpec, ShardStatus};

use crate::json::Json;

/// File name of the campaign artifact `specrun-lab pool run` writes.
pub const POOL_REPORT_NAME: &str = "POOL_report.json";

/// Parses a pool spec document (the JSON [`CampaignSpec::to_json`] emits,
/// or a hand-written equivalent) into a validated campaign.
pub fn parse_spec(text: &str) -> Result<CampaignSpec, String> {
    let json = Json::parse(text)?;
    decode_spec(&json)
}

/// Decodes an already-parsed spec document. Strict about unknown keys and
/// value ranges; the returned spec always passes
/// [`CampaignSpec::is_valid`].
pub fn decode_spec(json: &Json) -> Result<CampaignSpec, String> {
    let fields = match json {
        Json::Obj(fields) => fields,
        _ => return Err("pool spec: the document must be a JSON object".into()),
    };
    const KNOWN: [&str; 10] = [
        "pool_spec",
        "seed",
        "training_rounds",
        "attack_filler",
        "max_cycles",
        "secrets",
        "layout",
        "warm",
        "knobs",
        "shards",
    ];
    for (key, _) in fields {
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!("pool spec: unknown key `{key}`"));
        }
    }
    match json.get("pool_spec").and_then(Json::as_str) {
        Some("specrun") => {}
        _ => return Err("pool spec: missing `\"pool_spec\": \"specrun\"` marker".into()),
    }

    let secrets_json = json
        .get("secrets")
        .and_then(Json::as_arr)
        .ok_or("pool spec: `secrets` must be an array of bytes")?;
    let mut secrets = Vec::with_capacity(secrets_json.len());
    for v in secrets_json {
        let byte = u64_of(v, "pool spec: secret")?;
        if byte == 0 || byte > 255 {
            return Err(format!(
                "pool spec: secret {byte} out of range (1..=255; 0 is unrecoverable by design)"
            ));
        }
        secrets.push(byte as u8);
    }

    let shards_json = json
        .get("shards")
        .and_then(Json::as_arr)
        .ok_or("pool spec: `shards` must be an array of matrix cells")?;
    let mut shards = Vec::with_capacity(shards_json.len());
    for v in shards_json {
        let gadget_label =
            v.get("gadget").and_then(Json::as_str).ok_or("pool spec: shard without `gadget`")?;
        let gadget = GadgetKind::from_label(gadget_label)
            .ok_or_else(|| format!("pool spec: unknown gadget `{gadget_label}`"))?;
        let policy_label =
            v.get("policy").and_then(Json::as_str).ok_or("pool spec: shard without `policy`")?;
        let policy = PlanPolicy::from_label(policy_label)
            .ok_or_else(|| format!("pool spec: unknown policy `{policy_label}`"))?;
        let nop_slide = match v.get("nop_slide") {
            None => 0,
            Some(n) => u32_of(n, "pool spec: nop_slide")?,
        };
        shards.push(ShardSpec { gadget, policy, nop_slide });
    }

    let spec = CampaignSpec {
        seed: match json.get("seed") {
            None => 0,
            Some(v) => u64_of(v, "pool spec: seed")?,
        },
        layout: match json.get("layout") {
            None => PlanLayout::paper_default(),
            Some(v) => decode_layout(v)?,
        },
        knobs: match json.get("knobs") {
            None => KnobSpec::default(),
            Some(v) => decode_knobs(v)?,
        },
        warm: match json.get("warm") {
            None => Vec::new(),
            Some(v) => decode_warm(v)?,
        },
        training_rounds: u32_of(req(json, "training_rounds")?, "pool spec: training_rounds")?,
        attack_filler: u32_of(req(json, "attack_filler")?, "pool spec: attack_filler")?,
        max_cycles: u64_of(req(json, "max_cycles")?, "pool spec: max_cycles")?,
        secrets,
        shards,
    };
    if !spec.is_valid() {
        return Err("pool spec: structurally invalid campaign \
                    (check layout geometry, shards, secrets and warm ranges)"
            .into());
    }
    Ok(spec)
}

fn req<'a>(json: &'a Json, key: &str) -> Result<&'a Json, String> {
    json.get(key).ok_or_else(|| format!("pool spec: missing `{key}`"))
}

fn decode_layout(json: &Json) -> Result<PlanLayout, String> {
    let mut layout = PlanLayout::paper_default();
    let fields = match json {
        Json::Obj(fields) => fields,
        _ => return Err("pool spec: `layout` must be an object".into()),
    };
    for (key, value) in fields {
        let slot = match key.as_str() {
            "bound_addr" => &mut layout.bound_addr,
            "bound_value" => &mut layout.bound_value,
            "array1_base" => &mut layout.array1_base,
            "secret_addr" => &mut layout.secret_addr,
            "probe_base" => &mut layout.probe_base,
            "probe_stride" => &mut layout.probe_stride,
            "probe_entries" => &mut layout.probe_entries,
            "results_base" => &mut layout.results_base,
            other => return Err(format!("pool spec: unknown layout key `{other}`")),
        };
        *slot = u64_of(value, &format!("pool spec: layout.{key}"))?;
    }
    Ok(layout)
}

fn decode_knobs(json: &Json) -> Result<KnobSpec, String> {
    let mut knobs = KnobSpec::default();
    let fields = match json {
        Json::Obj(fields) => fields,
        _ => return Err("pool spec: `knobs` must be an object".into()),
    };
    for (key, value) in fields {
        let what = format!("pool spec: knobs.{key}");
        match key.as_str() {
            "rob_entries" => knobs.rob_entries = u32_of(value, &what)?,
            "lq_entries" => knobs.lq_entries = u32_of(value, &what)?,
            "sq_entries" => knobs.sq_entries = u32_of(value, &what)?,
            "enter_penalty" => knobs.enter_penalty = u64_of(value, &what)?,
            "exit_penalty" => knobs.exit_penalty = u64_of(value, &what)?,
            "train_predictor" => knobs.train_predictor = bool_of(value, &what)?,
            "checkpoint_predictor" => knobs.checkpoint_predictor = bool_of(value, &what)?,
            "vector_lanes" => knobs.vector_lanes = u64_of(value, &what)?,
            "min_episode_yield" => knobs.min_episode_yield = u64_of(value, &what)?,
            "useless_backoff" => knobs.useless_backoff = u64_of(value, &what)?,
            "runahead_cache_bytes" => knobs.runahead_cache_bytes = u32_of(value, &what)?,
            "sl_entries" => knobs.sl_entries = u32_of(value, &what)?,
            "sl_latency" => knobs.sl_latency = u64_of(value, &what)?,
            "fast_forward" => knobs.fast_forward = bool_of(value, &what)?,
            other => return Err(format!("pool spec: unknown knob `{other}`")),
        }
    }
    Ok(knobs)
}

fn decode_warm(json: &Json) -> Result<Vec<WarmStep>, String> {
    let steps = match json.as_arr() {
        Some(steps) => steps,
        None => return Err("pool spec: `warm` must be an array".into()),
    };
    steps
        .iter()
        .map(|step| {
            Ok(WarmStep {
                addr: u64_of(req(step, "addr")?, "pool spec: warm.addr")?,
                len: u64_of(req(step, "len")?, "pool spec: warm.len")?,
            })
        })
        .collect()
}

/// Decodes an unsigned integer that may be a JSON number or a string
/// (decimal or `0x`-prefixed hex — addresses and 64-bit seeds are emitted
/// as strings because f64 cannot hold them exactly).
fn u64_of(value: &Json, what: &str) -> Result<u64, String> {
    match value {
        Json::Num(n) if *n >= 0.0 && n.trunc() == *n && *n < 9_007_199_254_740_992.0 => {
            Ok(*n as u64)
        }
        Json::Str(s) => {
            let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.map_err(|_| format!("{what}: malformed integer `{s}`"))
        }
        _ => Err(format!("{what}: expected an unsigned integer")),
    }
}

fn u32_of(value: &Json, what: &str) -> Result<u32, String> {
    let v = u64_of(value, what)?;
    u32::try_from(v).map_err(|_| format!("{what}: {v} does not fit in 32 bits"))
}

fn bool_of(value: &Json, what: &str) -> Result<bool, String> {
    match value {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("{what}: expected true or false")),
    }
}

/// Renders a completed campaign as the `POOL_report.json` document.
///
/// Everything here is a pure function of `(spec, report)` — thread count,
/// wall-clock time and host identity never appear — so two runs of the
/// same spec produce byte-identical artifacts regardless of parallelism.
/// That is the property the CI `pool-repro` job enforces with a byte
/// compare. Shard fingerprints are rendered as hex strings (u64 does not
/// survive a round trip through f64).
pub fn report_json(spec: &CampaignSpec, report: &PoolReport) -> Json {
    let shards = report
        .shards
        .iter()
        .map(|shard| {
            let mut fields = vec![
                ("label".into(), Json::str(shard.spec.label())),
                ("gadget".into(), Json::str(shard.spec.gadget.label())),
                ("policy".into(), Json::str(shard.spec.policy.label())),
                ("nop_slide".into(), Json::Num(f64::from(shard.spec.nop_slide))),
                ("status".into(), Json::str(shard.status.label())),
            ];
            match &shard.status {
                ShardStatus::Done { attempts } => {
                    fields.push(("attempts".into(), Json::Num(f64::from(*attempts))));
                }
                ShardStatus::Failed(error) | ShardStatus::Quarantined(error) => {
                    fields.push(("error".into(), Json::str(error.clone())));
                }
                ShardStatus::Skipped => {}
            }
            let stats = &shard.stats;
            fields.extend([
                ("units".into(), Json::Num(stats.units as f64)),
                ("leaks".into(), Json::Num(stats.leaks as f64)),
                ("wrong".into(), Json::Num(stats.wrong as f64)),
                ("silent".into(), Json::Num(stats.silent as f64)),
                ("leak_rate".into(), Json::Num(stats.leak_rate())),
                ("runahead_entries".into(), Json::Num(stats.runahead_entries as f64)),
                ("inv_branches".into(), Json::Num(stats.inv_branches as f64)),
                ("fingerprint".into(), Json::str(format!("{:#018x}", stats.fingerprint))),
            ]);
            Json::Obj(fields)
        })
        .collect();
    Json::obj(vec![
        ("pool_report".into(), Json::str("specrun")),
        ("seed".into(), Json::str(spec.seed.to_string())),
        ("secrets_per_shard".into(), Json::Num(spec.secrets.len() as f64)),
        ("unit_count".into(), Json::Num(spec.unit_count() as f64)),
        ("breaker_tripped".into(), Json::Bool(report.breaker_tripped)),
        ("shards_done".into(), Json::Num(report.completed() as f64)),
        ("total_units".into(), Json::Num(report.total_units() as f64)),
        (
            "total_leaks".into(),
            Json::Num(report.shards.iter().map(|s| s.stats.leaks).sum::<u64>() as f64),
        ),
        ("shards".into(), Json::Arr(shards)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrun_workloads::pool::{ShardOutcome, ShardStats};

    #[test]
    fn emitted_matrix_spec_round_trips_exactly() {
        let spec = CampaignSpec::paper_matrix();
        assert_eq!(parse_spec(&spec.to_json(0)).unwrap(), spec);
        // And at a nonzero indent (the rendering used when embedding).
        assert_eq!(parse_spec(&spec.to_json(2)).unwrap(), spec);
    }

    #[test]
    fn minimal_spec_defaults_to_the_paper_machine() {
        let spec = parse_spec(
            r#"{
                "pool_spec": "specrun",
                "training_rounds": 8,
                "attack_filler": 600,
                "max_cycles": 1000000,
                "secrets": [86],
                "shards": [{"gadget": "Pht", "policy": "Runahead"}]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.layout, PlanLayout::paper_default());
        assert_eq!(spec.knobs, KnobSpec::default());
        assert!(spec.warm.is_empty());
        assert_eq!(spec.seed, 0);
        assert_eq!(spec.shards[0].nop_slide, 0, "nop_slide defaults to the Fig. 9 shape");
    }

    #[test]
    fn hex_and_decimal_integers_both_decode() {
        let mut spec = CampaignSpec::paper_matrix();
        spec.seed = u64::MAX;
        let decoded = parse_spec(&spec.to_json(0)).unwrap();
        assert_eq!(decoded.seed, u64::MAX, "seeds above 2^53 survive (string-encoded)");
        assert_eq!(decoded.layout.probe_base, 0x0100_0000, "hex addresses decode");
    }

    #[test]
    fn malformed_specs_fail_loudly() {
        let cases: &[(&str, &str)] = &[
            ("{}", "pool_spec"),
            (r#"{"pool_spec": "other"}"#, "marker"),
            (
                r#"{"pool_spec": "specrun", "training_rounds": 1, "attack_filler": 1,
                   "max_cycles": 1, "secrets": [0],
                   "shards": [{"gadget": "Pht", "policy": "Runahead"}]}"#,
                "secret 0",
            ),
            (
                r#"{"pool_spec": "specrun", "training_rounds": 1, "attack_filler": 1,
                   "max_cycles": 1, "secrets": [86],
                   "shards": [{"gadget": "Smc", "policy": "Runahead"}]}"#,
                "unknown gadget",
            ),
            (
                r#"{"pool_spec": "specrun", "training_rounds": 1, "attack_filler": 1,
                   "max_cycles": 1, "secrets": [86],
                   "shards": [{"gadget": "Pht", "policy": "Paranoid"}]}"#,
                "unknown policy",
            ),
            (
                r#"{"pool_spec": "specrun", "max_cycles": 1, "secrets": [86], "typo_key": 1,
                   "training_rounds": 1, "attack_filler": 1,
                   "shards": [{"gadget": "Pht", "policy": "Runahead"}]}"#,
                "unknown key",
            ),
            (
                r#"{"pool_spec": "specrun", "training_rounds": 1, "attack_filler": 1,
                   "max_cycles": "0xZZ", "secrets": [86],
                   "shards": [{"gadget": "Pht", "policy": "Runahead"}]}"#,
                "malformed integer",
            ),
            (
                r#"{"pool_spec": "specrun", "training_rounds": 1, "attack_filler": 1,
                   "max_cycles": 1, "secrets": [86], "shards": []}"#,
                "no shards",
            ),
            ("not json at all", "parse error"),
        ];
        for (text, why) in cases {
            assert!(parse_spec(text).is_err(), "{why} must be rejected");
        }
    }

    #[test]
    fn report_artifact_is_deterministic_and_reparsable() {
        let spec = CampaignSpec::paper_matrix();
        let mut stats = ShardStats::default();
        for &s in &spec.secrets {
            stats.record(Some(s), s, 3, 2, u64::from(s) * 0x1234_5678_9abc);
        }
        let shards = spec
            .shards
            .iter()
            .map(|&shard| ShardOutcome {
                spec: shard,
                stats,
                status: ShardStatus::Done { attempts: 1 },
            })
            .collect();
        let report = PoolReport { shards, breaker_tripped: false };
        let a = report_json(&spec, &report).render();
        assert_eq!(a, report_json(&spec, &report).render());
        let parsed = Json::parse(&a).unwrap();
        assert_eq!(parsed.get("pool_report").and_then(Json::as_str), Some("specrun"));
        assert_eq!(parsed.get("unit_count").and_then(Json::as_num), Some(24.0));
        assert_eq!(parsed.get("total_leaks").and_then(Json::as_num), Some(24.0));
        let rows = parsed.get("shards").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].get("label").and_then(Json::as_str), Some("pht_runahead"));
        assert_eq!(rows[0].get("leak_rate").and_then(Json::as_num), Some(1.0));
        let fp = rows[0].get("fingerprint").and_then(Json::as_str).unwrap();
        assert!(fp.starts_with("0x") && fp.len() == 18, "fixed-width hex fingerprint: {fp}");
    }

    #[test]
    fn failed_and_skipped_shards_render_wellformed_zero_rows() {
        let spec = CampaignSpec::paper_matrix();
        let shards = vec![
            ShardOutcome {
                spec: spec.shards[0],
                stats: ShardStats::default(),
                status: ShardStatus::Failed("cycle budget exceeded".into()),
            },
            ShardOutcome {
                spec: spec.shards[1],
                stats: ShardStats::default(),
                status: ShardStatus::Skipped,
            },
        ];
        let report = PoolReport { shards, breaker_tripped: true };
        let text = report_json(&spec, &report).render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("breaker_tripped"), Some(&Json::Bool(true)));
        let rows = parsed.get("shards").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("status").and_then(Json::as_str), Some("failed"));
        assert_eq!(rows[0].get("error").and_then(Json::as_str), Some("cycle budget exceeded"));
        assert_eq!(rows[0].get("leak_rate").and_then(Json::as_num), Some(0.0));
        assert_eq!(rows[1].get("status").and_then(Json::as_str), Some("skipped"));
        assert!(!text.contains("NaN") && !text.contains("nan"), "no NaN leaks into artifacts");
    }
}
