//! The `Strategy` trait and the combinators the workspace tests use.

use core::fmt::Debug;
use core::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::rng::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Erases the strategy type (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let this = Rc::new(self);
        BoxedStrategy(Rc::new(move |rng| this.generate(rng)))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice over boxed strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T: Debug> Union<T> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64 + 1;
                // span == 0 only for the full u64 domain: take any value.
                if span == 0 {
                    rng.next_u64() as $t
                } else {
                    start + rng.below(span) as $t
                }
            }
        }
    )*};
}

unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}
