//! `any::<T>()` support for the primitive types the tests draw from.

use core::fmt::Debug;
use core::marker::PhantomData;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct ArbitraryStrategy<A>(PhantomData<A>);

/// The full-domain strategy for `A` (mirrors `proptest::prelude::any`).
pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
    ArbitraryStrategy(PhantomData)
}

impl<A: Arbitrary> Strategy for ArbitraryStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias toward boundary values (real proptest does the same):
                // they find overflow/edge bugs far faster than uniform draws.
                if rng.one_in(8) {
                    match rng.below(4) {
                        0 => 0 as $t,
                        1 => 1 as $t,
                        2 => <$t>::MAX,
                        _ => <$t>::MIN,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
