//! Runner configuration (`ProptestConfig`).

/// How many cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}
