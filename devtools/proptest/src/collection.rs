//! Collection strategies: `vec` and `hash_set`.

use core::fmt::Debug;
use core::hash::Hash;
use core::ops::{Range, RangeInclusive};
use std::collections::HashSet;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Admissible collection sizes, drawn uniformly.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        let span = (self.max_inclusive - self.min) as u64 + 1;
        self.min + rng.below(span) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *r.start(), max_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max_inclusive: n }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Result of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
///
/// When the element domain is too small to reach the drawn size, the set is
/// as large as repeated draws could make it (mirrors proptest's retries).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size: size.into() }
}

/// Result of [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = self.size.pick(rng);
        let mut out = HashSet::with_capacity(n);
        let mut attempts = 0usize;
        while out.len() < n && attempts < n.saturating_mul(20) + 64 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
