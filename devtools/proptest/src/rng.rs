//! Deterministic random generation for the shim (SplitMix64).

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound == 0` returns 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// One chance in `n`.
    pub fn one_in(&mut self, n: u64) -> bool {
        self.below(n) == 0
    }
}

/// Stable seed derived from a test name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
