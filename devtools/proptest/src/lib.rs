//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API used by this workspace's
//! property tests, with deterministic per-test seeding and **no shrinking**:
//! a failing case panics with the generated inputs printed so the case can
//! be reproduced by hand. See the package manifest for scope notes.

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::{Just, Strategy};

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!("prop_assert_eq failed: {:?} != {:?}", l, r);
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!($($fmt)+);
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!("prop_assert_ne failed: both sides are {:?}", l);
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!($($fmt)+);
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `Config::cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::Config::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let seed = $crate::rng::seed_from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let mut rng = $crate::rng::TestRng::new(
                        seed ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let desc = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(err) = outcome {
                        eprintln!(
                            "proptest {} case {case} failed with inputs: {desc}",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(err);
                    }
                }
            }
        )*
    };
}
