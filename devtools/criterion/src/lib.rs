//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API this workspace's benches
//! use. Measurement is deliberately simple: each benchmark runs one warm-up
//! iteration, then `sample_size` timed iterations, and prints min / mean /
//! max wall-clock time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, 10, f);
        self
    }
}

/// A named group sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id, `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` iterations of `routine` (plus one warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{label:<50} time: [{} {} {}]",
        format_duration(min),
        format_duration(mean),
        format_duration(max)
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a group runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` executes bench binaries with `--test`;
            // there is nothing to verify in this shim, so exit quickly.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
