//! Cross-crate integration: assembler → CPU → memory → predictor flows that
//! exercise the public APIs together.

use specrun_cpu::{Core, CpuConfig};
use specrun_isa::assemble;
use specrun_isa::IntReg;
use specrun_mem::HitLevel;

fn r(i: u8) -> IntReg {
    IntReg::new(i).unwrap()
}

/// Text assembly runs on the core and produces architectural results.
#[test]
fn assembled_text_runs_on_core() {
    let program = assemble(
        "
        .base 0x1000
        .sym buf 0x8000
            la   r1, buf
            li   r2, 0
            li   r4, 10
        loop:
            st8  r2, (r1)
            ld8  r3, (r1)
            add  r2, r2, r3
            addi r2, r2, 1
            addi r1, r1, 8
            addi r5, r5, 1
            blt  r5, r4, loop
            halt
        ",
    )
    .expect("assembles");
    let mut core = Core::new(CpuConfig::default());
    core.load_program(&program);
    core.run(1_000_000);
    assert!(core.is_halted());
    // r2 doubles-plus-one each iteration: 0→1→3→7→…→2^10-1
    assert_eq!(core.read_int_reg(r(2)), (1 << 10) - 1);
}

/// The microarchitectural contract behind the attack: a program's cache
/// side effects persist after the program ends.
#[test]
fn cache_state_outlives_programs() {
    let toucher = assemble(
        "
        .sym data 0x4000
            la r1, data
            ld8 r2, (r1)
            halt
        ",
    )
    .unwrap();
    let mut core = Core::new(CpuConfig::default());
    core.load_program(&toucher);
    core.run(10_000);
    assert_ne!(core.mem().residency(0x4000), HitLevel::Mem);
}

/// Predictor state also persists: a branch trained by one program is
/// predicted correctly at first sight by the next (same PC).
#[test]
fn predictor_training_transfers_across_programs() {
    let trainer = assemble(
        "
        .base 0x2000
            li r2, 50
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        ",
    )
    .unwrap();
    let mut core = Core::new(CpuConfig::default());
    core.load_program(&trainer);
    core.run(100_000);
    let first_run = core.stats().branch_mispredicts;

    core.reset_stats();
    core.load_program(&trainer);
    core.run(100_000);
    let second_run = core.stats().branch_mispredicts;
    assert!(
        second_run <= first_run,
        "warm predictor should not mispredict more ({second_run} vs {first_run})"
    );
}

/// The suite umbrella crate re-exports everything examples need.
#[test]
fn umbrella_prelude_compiles_and_works() {
    use specrun_suite::prelude::*;
    let config = CpuConfig::default();
    assert_eq!(config.rob_entries, 256);
    let mut session = Session::builder().policy(Policy::NoRunahead).build();
    session.write_bytes(0x100, b"ok");
    assert_eq!(session.read_bytes(0x100, 2), b"ok");
}
