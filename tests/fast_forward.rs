//! Idle-cycle fast-forward equivalence: for every workload kernel and every
//! machine variant, the fast-forwarding simulator must be *bit-identical*
//! to the naive one-cycle-at-a-time loop — same cycle count, same retired
//! instructions, same full statistics block, same architectural registers.

use specrun_cpu::{Core, CpuConfig, CpuStats, RunExit};
use specrun_isa::IntReg;
use specrun_workloads::{kernels, suite_with_iters, Workload};

/// Runs `w` to completion and returns (stats, architectural registers).
fn run(w: &Workload, cfg: CpuConfig) -> (CpuStats, Vec<u64>) {
    let mut core = Core::new(cfg);
    for (addr, bytes) in &w.setup {
        core.mem_mut().write_bytes(*addr, bytes);
    }
    core.load_program(&w.program);
    let exit = core.run(100_000_000);
    assert_eq!(exit, RunExit::Halted, "{} must halt", w.name);
    let regs = (1..32)
        .map(|i| core.read_int_reg(IntReg::new(i).unwrap()))
        .collect();
    (*core.stats(), regs)
}

fn workloads() -> Vec<Workload> {
    let mut ws = suite_with_iters(150);
    ws.push(kernels::pointer_chase(60));
    ws
}

#[test]
fn fast_forward_matches_naive_loop_exactly() {
    for w in workloads() {
        for (machine, base) in [
            ("no_runahead", CpuConfig::no_runahead()),
            ("runahead", CpuConfig::default()),
            ("secure", CpuConfig::secure_runahead()),
        ] {
            let mut ff = base.clone();
            ff.fast_forward = true;
            let mut naive = base;
            naive.fast_forward = false;
            let (ff_stats, ff_regs) = run(&w, ff);
            let (naive_stats, naive_regs) = run(&w, naive);
            assert_eq!(
                ff_stats, naive_stats,
                "stats diverge on {}/{machine}",
                w.name
            );
            assert_eq!(
                ff_regs, naive_regs,
                "architectural registers diverge on {}/{machine}",
                w.name
            );
        }
    }
}

/// The self-checking mode: every jump is re-validated by stepping a cloned
/// core through the skipped window. Any unsound skip panics inside run().
#[test]
fn ff_check_mode_validates_every_jump() {
    for w in [kernels::pointer_chase(40), kernels::mcf(60)] {
        for base in [CpuConfig::no_runahead(), CpuConfig::default()] {
            let mut cfg = base;
            cfg.ff_check = true;
            let (stats, _) = run(&w, cfg);
            assert!(stats.cycles > 0);
        }
    }
}
