//! Fast-forward and event-scheduler equivalence: for every workload kernel
//! and every machine variant, the fast-forwarding simulator must be
//! *bit-identical* to the naive one-cycle-at-a-time loop — same cycle
//! count, same retired instructions, same full statistics block, same
//! architectural registers — and the event-driven scheduler must reach the
//! same decisions as the retired scan-based one (`sched_check`).

use specrun::attack::{run_pht_poc, PocConfig};
use specrun::session::Session;
use specrun_cpu::{Core, CpuConfig, CpuStats, RunExit};
use specrun_isa::IntReg;
use specrun_workloads::{kernels, suite_with_iters, Workload};

/// Runs `w` to completion and returns (stats, architectural registers).
fn run(w: &Workload, cfg: CpuConfig) -> (CpuStats, Vec<u64>) {
    let mut core = Core::new(cfg);
    for (addr, bytes) in &w.setup {
        core.mem_mut().write_bytes(*addr, bytes);
    }
    core.load_program(&w.program);
    let exit = core.run(100_000_000);
    assert_eq!(exit, RunExit::Halted, "{} must halt", w.name);
    let regs = (1..32).map(|i| core.read_int_reg(IntReg::new(i).unwrap())).collect();
    (*core.stats(), regs)
}

fn workloads() -> Vec<Workload> {
    let mut ws = suite_with_iters(150);
    ws.push(kernels::pointer_chase(60));
    ws
}

#[test]
fn fast_forward_matches_naive_loop_exactly() {
    for w in workloads() {
        for (machine, base) in [
            ("no_runahead", CpuConfig::no_runahead()),
            ("runahead", CpuConfig::default()),
            ("secure", CpuConfig::secure_runahead()),
        ] {
            let mut ff = base.clone();
            ff.fast_forward = true;
            let mut naive = base;
            naive.fast_forward = false;
            let (ff_stats, ff_regs) = run(&w, ff);
            let (naive_stats, naive_regs) = run(&w, naive);
            assert_eq!(ff_stats, naive_stats, "stats diverge on {}/{machine}", w.name);
            assert_eq!(
                ff_regs, naive_regs,
                "architectural registers diverge on {}/{machine}",
                w.name
            );
        }
    }
}

/// The self-checking mode: every jump is re-validated by stepping a cloned
/// core through the skipped window. Any unsound skip panics inside run().
#[test]
fn ff_check_mode_validates_every_jump() {
    for w in [kernels::pointer_chase(40), kernels::mcf(60)] {
        for base in [CpuConfig::no_runahead(), CpuConfig::default()] {
            let mut cfg = base;
            cfg.ff_check = true;
            let (stats, _) = run(&w, cfg);
            assert!(stats.cycles > 0);
        }
    }
}

/// The event-scheduler self-check: the retired scan-based logic runs in
/// parallel every cycle (writeback due-sets recomputed by a full ROB scan,
/// the issue-ready queue audited against every waiting entry's operands)
/// and any divergence panics inside run(). The checked run must also be
/// bit-identical — stats and architectural state — to the unchecked one.
#[test]
fn sched_check_validates_event_scheduler() {
    let mut ws = suite_with_iters(60);
    ws.push(kernels::pointer_chase(30));
    for w in ws {
        for (machine, base) in [
            ("no_runahead", CpuConfig::no_runahead()),
            ("runahead", CpuConfig::default()),
            ("secure", CpuConfig::secure_runahead()),
        ] {
            let mut checked = base.clone();
            checked.sched_check = true;
            let (checked_stats, checked_regs) = run(&w, checked);
            let (plain_stats, plain_regs) = run(&w, base);
            assert_eq!(
                checked_stats, plain_stats,
                "sched_check changes stats on {}/{machine}",
                w.name
            );
            assert_eq!(
                checked_regs, plain_regs,
                "sched_check changes architectural state on {}/{machine}",
                w.name
            );
        }
    }
}

/// Extended fast-forward (jumps with instructions in flight) must be
/// invisible to the end-to-end SpectrePHT-in-runahead proof of concept:
/// same leaked byte, same probe-relevant statistics, with and without it.
#[test]
fn fast_forward_is_invisible_to_the_attack_poc() {
    let mut outcomes = Vec::new();
    for ff in [true, false] {
        let cfg = CpuConfig { fast_forward: ff, ..CpuConfig::default() };
        let mut session = Session::builder().config(cfg).build();
        let out = run_pht_poc(&mut session, &PocConfig::default());
        outcomes.push((out.leaked, out.expected, *session.core().stats()));
    }
    assert_eq!(outcomes[0], outcomes[1], "fast-forward changed the PoC outcome");
    assert_eq!(outcomes[0].0, Some(86), "the runahead machine must leak the secret");
}

/// The predecode layer must be semantically invisible: a `predecode_check`
/// run — which re-derives every fetched micro-op's `UopMeta` from the
/// `Inst` enum with the retired per-site derivations and panics on any
/// divergence — over the end-to-end SpectrePHT-in-runahead proof of
/// concept leaks the same byte with bit-identical statistics.
#[test]
fn predecode_check_is_invisible_to_the_attack_poc() {
    let mut outcomes = Vec::new();
    for check in [true, false] {
        let cfg = CpuConfig { predecode_check: check, ..CpuConfig::default() };
        let mut session = Session::builder().config(cfg).build();
        let out = run_pht_poc(&mut session, &PocConfig::default());
        outcomes.push((out.leaked, out.expected, *session.core().stats()));
    }
    assert_eq!(outcomes[0], outcomes[1], "predecode_check changed the PoC outcome");
    assert_eq!(outcomes[0].0, Some(86), "the runahead machine must leak the secret");
}

/// `predecode_check` over the workload kernels, on every machine variant:
/// the audit must pass (no panic) and stats and architectural state stay
/// bit-identical to the unchecked run.
#[test]
fn predecode_check_validates_kernels() {
    for w in [kernels::mcf(60), kernels::pointer_chase(30)] {
        for (machine, base) in [
            ("no_runahead", CpuConfig::no_runahead()),
            ("runahead", CpuConfig::default()),
            ("secure", CpuConfig::secure_runahead()),
        ] {
            let mut checked = base.clone();
            checked.predecode_check = true;
            let (checked_stats, checked_regs) = run(&w, checked);
            let (plain_stats, plain_regs) = run(&w, base);
            assert_eq!(
                checked_stats, plain_stats,
                "predecode_check changes stats on {}/{machine}",
                w.name
            );
            assert_eq!(
                checked_regs, plain_regs,
                "predecode_check changes architectural state on {}/{machine}",
                w.name
            );
        }
    }
}
