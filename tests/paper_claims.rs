//! Repository-level integration tests: one test per headline claim of the
//! paper, spanning all crates through the public APIs.

use specrun::attack::{run_pht_poc, PocConfig};
use specrun::defense::verify_pht_blocked;
use specrun::session::{Policy, Session};
use specrun::window::measure_windows;
use specrun_workloads::{compare, geomean_speedup, suite_with_iters};

/// Fig. 9: SPECRUN leaks a secret from the victim on the runahead machine.
#[test]
fn claim_fig9_leak() {
    let cfg = PocConfig::default();
    let mut session = Session::builder().policy(Policy::Runahead).build();
    let outcome = run_pht_poc(&mut session, &cfg);
    assert_eq!(outcome.leaked, Some(86));
    assert!(outcome.runahead_entries > 0);
}

/// §5.3: runahead eliminates the ROB-size limit on transient instructions.
#[test]
fn claim_window_shape() {
    let report = measure_windows();
    assert_eq!(report.n1, 255, "N1 must be ROB - 1");
    assert!(report.n2 > 256, "N2 = {} must exceed the ROB", report.n2);
    assert!(report.n3 > report.n2, "N3 = {} must exceed N2 = {}", report.n3, report.n2);
}

/// Fig. 11: beyond the ROB, only the runahead machine leaks.
#[test]
fn claim_fig11_separation() {
    let cfg = PocConfig::fig11(300);
    let mut plain = Session::builder().policy(Policy::NoRunahead).build();
    assert_eq!(run_pht_poc(&mut plain, &cfg).leaked, None);
    let cfg = PocConfig::fig11(300);
    let mut ra = Session::builder().policy(Policy::Runahead).build();
    assert_eq!(run_pht_poc(&mut ra, &cfg).leaked, Some(127));
}

/// Fig. 7: runahead improves IPC on every kernel; the mean lands near the
/// paper's 11%.
#[test]
fn claim_fig7_speedup() {
    let mut results = Vec::new();
    for w in suite_with_iters(400) {
        let c = compare(&w, 50_000_000);
        assert!(
            c.speedup() > 0.99,
            "{} must not regress under runahead: {:.3}",
            c.name,
            c.speedup()
        );
        results.push(c);
    }
    let mean = geomean_speedup(&results);
    assert!(
        (1.02..1.35).contains(&mean),
        "geomean speedup {mean:.3} should be near the paper's 1.11"
    );
}

/// §6: the secure-runahead scheme blocks the attack.
#[test]
fn claim_defense_blocks() {
    let cfg = PocConfig::fig11(300);
    let mut session = Session::builder().policy(Policy::Secure).build();
    let report = verify_pht_blocked(&mut session, &cfg);
    assert!(report.blocked());
    assert!(report.outcome.runahead_entries > 0, "runahead still ran");
}

/// The whole stack is deterministic end to end.
#[test]
fn claim_deterministic() {
    let run = || {
        let cfg = PocConfig::default();
        let mut session = Session::builder().policy(Policy::Runahead).build();
        let o = run_pht_poc(&mut session, &cfg);
        (o.leaked, session.stats().cycles, session.stats().committed)
    };
    assert_eq!(run(), run());
}
