//! Umbrella crate for the SPECRUN reproduction workspace.
//!
//! This crate exists to host the repository-level [examples](https://github.com/specrun/specrun/tree/main/examples)
//! and cross-crate integration tests. It re-exports the member crates so the
//! examples can use one import root:
//!
//! ```
//! use specrun_suite::prelude::*;
//! let config = CpuConfig::default();
//! assert_eq!(config.rob_entries, 256);
//! ```

pub use specrun;
pub use specrun_bp;
pub use specrun_cpu;
pub use specrun_isa;
pub use specrun_lab;
pub use specrun_mem;
pub use specrun_trace;
pub use specrun_workloads;

/// Convenient glob import for examples and integration tests.
pub mod prelude {
    pub use specrun::prelude::*;
    pub use specrun_cpu::config::CpuConfig;
    pub use specrun_isa::prelude::*;
    pub use specrun_lab::prelude::*;
    pub use specrun_workloads::prelude::*;
}
