//! §4.4: the BTB and RSB Spectre variants nested inside runahead execution,
//! run as multi-program attacks (attacker trains from its own address
//! space, victim leaks during runahead, attacker probes).
//!
//! ```sh
//! cargo run --release --example spectre_variants
//! ```

use specrun::attack::{run_btb_poc, run_rsb_poc, PocConfig};
use specrun::session::{Policy, Session};

fn main() {
    let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };
    let mut session = Session::builder().policy(Policy::Runahead).build();
    let btb = run_btb_poc(&mut session, &cfg);
    println!(
        "SpectreBTB-in-runahead: leaked = {:?} (expected {}), episodes = {}",
        btb.leaked, btb.expected, btb.runahead_entries
    );
    assert!(btb.success());

    let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };
    let mut session = Session::builder().policy(Policy::Runahead).build();
    let rsb = run_rsb_poc(&mut session, &cfg);
    println!(
        "SpectreRSB-in-runahead: leaked = {:?} (expected {}), episodes = {}",
        rsb.leaked, rsb.expected, rsb.runahead_entries
    );
    assert!(rsb.success());

    println!();
    println!("both variants steer the unresolvable control flow into the gadget.");
}
