//! The headline demo: SPECRUN leaks a whole secret string byte-by-byte
//! through the runahead covert channel (paper Fig. 8 / Fig. 9).
//!
//! ```sh
//! cargo run --release --example specrun_poc
//! ```

use specrun::attack::{run_pht_poc, AttackLayout, PocConfig};
use specrun::session::{Policy, Session};

fn main() {
    let secret = b"SPECRUN!";
    println!("planted secret: {:?}", String::from_utf8_lossy(secret));
    print!("leaked:          ");

    let mut recovered = Vec::new();
    for (i, &byte) in secret.iter().enumerate() {
        // Each byte sits at its own address; the attacker picks the
        // malicious index x = secret_addr - array1_base accordingly.
        let layout = AttackLayout {
            secret_addr: AttackLayout::default().secret_addr + i as u64 * 64,
            ..AttackLayout::default()
        };
        let cfg = PocConfig { layout, secret: byte, ..PocConfig::default() };
        let mut session = Session::builder().policy(Policy::Runahead).layout(layout).build();
        let outcome = run_pht_poc(&mut session, &cfg);
        let got = outcome.leaked.unwrap_or(b'?');
        print!("{}", got as char);
        recovered.push(got);
    }
    println!();
    assert_eq!(recovered, secret, "the covert channel must recover every byte");
    println!("every byte recovered through the runahead covert channel.");
}
