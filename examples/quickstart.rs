//! Quickstart: build a tiny program, run it on the Table 1 runahead
//! machine, and look at the statistics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use specrun::Machine;
use specrun_isa::{IntReg, ProgramBuilder};

fn main() {
    let r = |i| IntReg::new(i).unwrap();

    // A little program: sum the numbers 0..100, with a flushed load in the
    // middle so the machine demonstrates a runahead episode.
    let mut b = ProgramBuilder::new(0x1000);
    b.li(r(1), 0); // sum
    b.li(r(2), 0x9000); // a data address
    b.flush(r(2), 0); // evict it
    b.ld(r(3), r(2), 0); // long-latency load → runahead trigger
    b.for_loop(r(4), 100, |b| {
        b.add(r(1), r(1), r(4));
    });
    b.halt();
    let program = b.build().expect("program builds");

    println!("{}", program.disassemble());

    let mut machine = Machine::runahead();
    machine.run_program(&program, 1_000_000);

    println!("sum 0..100 = {}", machine.reg(r(1)));
    assert_eq!(machine.reg(r(1)), (0..100).sum::<u64>());
    println!();
    println!("{}", machine.stats());
}
