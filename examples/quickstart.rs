//! Quickstart: one `Session` is the whole experiment — build the Table 1
//! runahead machine, plant a secret, run the SPECRUN proof of concept, and
//! watch the pipeline leak it (with ground-truth event tracing attached).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use specrun::attack::{run_pht_poc, PocConfig};
use specrun::session::{leak_trace_for, Policy, Session};
use specrun_cpu::CpuConfig;

fn main() {
    // The attack configuration: Fig. 9's planted secret byte 86 ('V'),
    // pushed beyond the 256-entry ROB by a nop slide (the Fig. 11 shape)
    // so runahead is the *only* channel — every probe-line fill the
    // observer sees is then a transient, secret-dependent one.
    let cfg = PocConfig { nop_slide: 300, ..PocConfig::default() };

    // One builder chain replaces the old Machine presets + hand plumbing:
    // machine policy, attack layout, planted secret, and a ground-truth
    // observer that counts transient secret-dependent cache fills as the
    // pipeline makes them.
    let mut session = Session::builder()
        .policy(Policy::Runahead)
        .layout(cfg.layout)
        .observer(leak_trace_for(&cfg.layout, &CpuConfig::default()))
        .build();

    let outcome = run_pht_poc(&mut session, &cfg);

    println!("planted secret:  {} ({:?})", cfg.secret, cfg.secret as char);
    match outcome.leaked {
        Some(byte) => println!("leaked byte: {byte} ({:?})", byte as char),
        None => println!("leaked byte: none"),
    }
    let trace = session.observer();
    println!(
        "ground truth:    {} transient secret-dependent fill(s), {} transient read(s) of the \
         secret line, observer says byte {:?}",
        trace.transient_secret_fills(),
        trace.secret_reads(),
        trace.ground_truth_byte(&[0]),
    );
    println!(
        "signature:       {} runahead episode(s), {} never-resolving INV branch(es)",
        outcome.runahead_entries, outcome.inv_branches
    );
    println!();
    println!("{}", session.stats());

    assert_eq!(outcome.leaked, Some(cfg.secret), "the runahead machine must leak");
    assert_eq!(trace.ground_truth_byte(&[0]), Some(cfg.secret), "ground truth must agree");
}
