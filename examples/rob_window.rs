//! The §5.3 experiment: how many instructions fit in the transient window?
//! Runahead logically enlarges the ROB (paper: N1 = 255, N2 = 480,
//! N3 = 840 on a 256-entry ROB).
//!
//! ```sh
//! cargo run --release --example rob_window
//! ```

use specrun::window::measure_windows;

fn main() {
    let report = measure_windows();
    println!("ROB capacity:                        {}", report.rob_entries);
    println!("N1 (normal machine, flush once):     {}  (paper: 255)", report.n1);
    println!("N2 (runahead, flush once):           {}  (paper: 480)", report.n2);
    println!(
        "N3 (runahead, repeated flush):       {}  (paper: 840, {} episodes here)",
        report.n3, report.episodes_n3
    );
    println!();
    if report.shape_holds() {
        println!("shape holds: N1 < ROB <= N2 < N3 — runahead removes the ROB limit.");
    } else {
        println!("WARNING: expected shape N1 < ROB <= N2 < N3 did not hold!");
    }
}
