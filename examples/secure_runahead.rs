//! The §6 defense demo: the same attack that leaks on the plain runahead
//! machine is blocked by the SL-cache scheme and by the skip-INV-branch
//! mitigation.
//!
//! ```sh
//! cargo run --release --example secure_runahead
//! ```

use specrun::attack::{run_pht_poc, PocConfig};
use specrun::defense::verify_pht_blocked;
use specrun::session::{Policy, Session};

fn main() {
    // Control: undefended runahead machine.
    let cfg = PocConfig::fig11(300);
    let mut undefended = Session::builder().policy(Policy::Runahead).build();
    let outcome = run_pht_poc(&mut undefended, &cfg);
    println!("undefended runahead machine: leaked = {:?} (secret 127)", outcome.leaked);
    assert_eq!(outcome.leaked, Some(127));

    // SL cache + taint tracking (Algorithm 1).
    let cfg = PocConfig::fig11(300);
    let mut secure = Session::builder().policy(Policy::Secure).build();
    let report = verify_pht_blocked(&mut secure, &cfg);
    println!(
        "secure runahead (SL cache):  leaked = {:?}, promotions = {}, deletions = {}",
        report.outcome.leaked, report.sl_promotions, report.sl_deletions
    );
    assert!(report.blocked());

    // Skip-INV-branch mitigation.
    let cfg = PocConfig::fig11(300);
    let mut skip = Session::builder().policy(Policy::SkipInv).build();
    let report = verify_pht_blocked(&mut skip, &cfg);
    println!(
        "skip-INV-branch mitigation:  leaked = {:?}, suppressed branches = {}",
        report.outcome.leaked, report.skipped_inv_branches
    );
    assert!(report.blocked());

    println!();
    println!("both §6 defenses block the leak while runahead keeps running.");
}
