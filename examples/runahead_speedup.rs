//! The Fig. 7 experiment: IPC of the six SPEC2006-like kernels with and
//! without runahead execution.
//!
//! ```sh
//! cargo run --release --example runahead_speedup
//! ```

use specrun_workloads::{compare, geomean_speedup, suite_with_iters};

fn main() {
    println!("{:<10} {:>12} {:>12} {:>9}", "kernel", "no-runahead", "runahead", "speedup");
    let mut results = Vec::new();
    for workload in suite_with_iters(800) {
        let c = compare(&workload, 50_000_000);
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>8.1}%",
            c.name,
            c.baseline.ipc,
            c.runahead.ipc,
            (c.speedup() - 1.0) * 100.0
        );
        results.push(c);
    }
    let mean = geomean_speedup(&results);
    println!("{:<10} {:>12} {:>12} {:>8.1}%", "geomean", "", "", (mean - 1.0) * 100.0);
    println!();
    println!("paper reports a mean improvement of 11% on this configuration.");
}
